"""The derived-result cache: LRU bounds, counters, and — the point —
per-predicate-key invalidation at both precision levels."""

import pytest

from repro.logic.formulas import Atom
from repro.logic.terms import Constant
from repro.storage.result_cache import ResultCache


def atom(pred, *names):
    return Atom(pred, tuple(Constant(n) for n in names))


class TestLookupAndBounds:
    def test_miss_then_hit(self):
        cache = ResultCache()
        hit, value = cache.get("k")
        assert (hit, value) == (False, None)
        cache.put("k", 42, deps=["p"])
        hit, value = cache.get("k")
        assert (hit, value) == (True, 42)
        assert cache.stats()["cache.hits"] == 1
        assert cache.stats()["cache.misses"] == 1

    def test_put_overwrites(self):
        cache = ResultCache()
        cache.put("k", 1, deps=["p"])
        cache.put("k", 2, deps=["q"])
        assert cache.get("k") == (True, 2)
        # The old dep binding is gone with the old entry.
        cache.invalidate([atom("p", "a")])
        assert cache.get("k") == (True, 2)

    def test_lru_eviction_past_bound(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1, deps=["p"])
        cache.put("b", 2, deps=["p"])
        cache.get("a")  # freshen: 'b' is now the LRU entry
        cache.put("c", 3, deps=["p"])
        assert cache.get("a")[0] is True
        assert cache.get("b")[0] is False
        assert cache.get("c")[0] is True
        assert cache.stats()["cache.evictions"] == 1
        assert len(cache) == 2

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(max_entries=0)

    def test_clear_keeps_counters(self):
        cache = ResultCache()
        cache.put("k", 1, deps=["p"])
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k")[0] is False
        stats = cache.stats()
        assert stats["cache.hits"] == 1 and stats["cache.misses"] == 1


class TestPredicateLevelInvalidation:
    def test_only_dependent_entries_drop(self):
        cache = ResultCache()
        cache.put("about_p", 1, deps=["p"])
        cache.put("about_q", 2, deps=["q"])
        cache.put("about_both", 3, deps=["p", "q"])
        dropped = cache.invalidate([atom("p", "a")])
        assert dropped == 2
        assert cache.get("about_p")[0] is False
        assert cache.get("about_both")[0] is False
        # The q-only entry stayed warm — the whole point.
        assert cache.get("about_q") == (True, 2)
        assert cache.stats()["cache.invalidations"] == 2

    def test_unrelated_predicate_is_a_noop(self):
        cache = ResultCache()
        cache.put("about_p", 1, deps=["p"])
        assert cache.invalidate([atom("r", "x")]) == 0
        assert cache.get("about_p") == (True, 1)

    def test_empty_change_set_is_a_noop(self):
        cache = ResultCache()
        cache.put("about_p", 1, deps=["p"])
        assert cache.invalidate([]) == 0
        assert cache.get("about_p") == (True, 1)


class TestAtomLevelInvalidation:
    def test_same_predicate_different_atom_stays_warm(self):
        cache = ResultCache()
        cache.put(
            "holds_ab", True, deps=["edge"], atoms=[atom("edge", "a", "b")]
        )
        cache.put(
            "holds_cd", False, deps=["edge"], atoms=[atom("edge", "c", "d")]
        )
        dropped = cache.invalidate([atom("edge", "c", "d")])
        assert dropped == 1
        assert cache.get("holds_ab") == (True, True)
        assert cache.get("holds_cd")[0] is False

    def test_predicate_level_entry_still_drops(self):
        """A formula entry (atoms=None) depends on the whole extension:
        any change-set atom of its predicate evicts it."""
        cache = ResultCache()
        cache.put("formula", True, deps=["edge"])
        assert cache.invalidate([atom("edge", "z", "z")]) == 1
        assert cache.get("formula")[0] is False

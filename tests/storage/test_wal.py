"""Write-ahead log unit tests: records, checksums, torn tails."""

import json

import pytest

from repro.storage.wal import WalCorruptionError, WalRecord, WriteAheadLog


def txn_record(lsn, *updates):
    return WalRecord(lsn, "txn", {"updates": list(updates)})


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog(tmp_path / "wal.log", sync=False)
    yield log
    log.close()


class TestRecords:
    def test_roundtrip(self):
        record = txn_record(3, "p(a)", "not q(b)")
        assert WalRecord.from_line(record.to_line().rstrip(b"\n")) == record

    def test_checksum_detects_bitflip(self):
        line = txn_record(1, "p(a)").to_line().rstrip(b"\n")
        flipped = line.replace(b"p(a)", b"p(b)")
        with pytest.raises(ValueError, match="checksum"):
            WalRecord.from_line(flipped)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            WalRecord(1, "mystery", {})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            WalRecord.from_line(b"[1, 2, 3]")


class TestAppendScan:
    def test_append_then_scan(self, wal):
        records = [txn_record(i, f"p(a{i})") for i in range(1, 6)]
        for record in records:
            wal.append(record)
        scanned, valid = wal.scan()
        assert scanned == records
        assert valid == wal.size()

    def test_batch_append_is_one_write(self, wal, monkeypatch):
        writes = []
        original = wal._write_bytes
        monkeypatch.setattr(
            wal, "_write_bytes", lambda data: (writes.append(data), original(data))
        )
        wal.append_batch([txn_record(1, "p(a)"), txn_record(2, "p(b)")])
        assert len(writes) == 1
        scanned, _ = wal.scan()
        assert [r.lsn for r in scanned] == [1, 2]

    def test_empty_batch_is_noop(self, wal):
        wal.append_batch([])
        assert wal.size() == 0

    def test_scan_missing_file(self, wal):
        assert wal.scan() == ([], 0)


class TestTornTail:
    def test_partial_json_tail_dropped(self, wal):
        wal.append(txn_record(1, "p(a)"))
        wal._write_bytes(b'{"lsn": 2, "kind": "txn", "da')
        scanned, valid = wal.scan()
        assert [r.lsn for r in scanned] == [1]
        assert valid < wal.size()
        wal.truncate_to(valid)
        assert wal.size() == valid
        # The log accepts appends again after truncation.
        wal.append(txn_record(2, "p(b)"))
        scanned, _ = wal.scan()
        assert [r.lsn for r in scanned] == [1, 2]

    def test_unterminated_but_parseable_tail_dropped(self, wal):
        """A record that parses but lacks its newline may still be a
        torn write of a longer line — it is not trusted."""
        wal.append(txn_record(1, "p(a)"))
        wal._write_bytes(txn_record(2, "p(b)").to_line().rstrip(b"\n"))
        scanned, valid = wal.scan()
        assert [r.lsn for r in scanned] == [1]
        assert valid < wal.size()

    def test_bad_crc_tail_dropped(self, wal):
        wal.append(txn_record(1, "p(a)"))
        decoded = json.loads(txn_record(2, "p(b)").to_line())
        decoded["crc"] ^= 0xFF
        wal._write_bytes(json.dumps(decoded).encode() + b"\n")
        scanned, _ = wal.scan()
        assert [r.lsn for r in scanned] == [1]

    def test_midlog_corruption_raises(self, wal):
        wal.append(txn_record(1, "p(a)"))
        wal._write_bytes(b"garbage\n")
        wal.append(txn_record(2, "p(b)"))
        with pytest.raises(WalCorruptionError, match="mid-log"):
            wal.scan()

    def test_lsn_regression_raises(self, wal):
        wal.append(txn_record(5, "p(a)"))
        wal.append(txn_record(4, "p(b)"))
        with pytest.raises(WalCorruptionError, match="LSN"):
            wal.scan()


class TestReset:
    def test_reset_empties_log(self, wal):
        wal.append(txn_record(1, "p(a)"))
        wal.reset()
        assert wal.size() == 0
        assert wal.scan() == ([], 0)

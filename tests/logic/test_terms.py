"""Unit tests for terms: identity, hashing, freshness."""

import pytest

from repro.logic.terms import (
    Constant,
    Variable,
    fresh_constant,
    fresh_variable,
    is_ground_term,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hash_consistent_with_equality(self):
        assert hash(Variable("X")) == hash(Variable("X"))
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_not_equal_to_constant_of_same_name(self):
        assert Variable("X") != Constant("X")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_str(self):
        assert str(Variable("Who")) == "Who"


class TestConstant:
    def test_equality_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")
        assert Constant(1) == Constant(1)

    def test_distinct_types_distinct_constants(self):
        assert Constant("1") != Constant(1)

    def test_hash_consistent(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2

    def test_str(self):
        assert str(Constant("dept")) == "dept"
        assert str(Constant(42)) == "42"


class TestFreshness:
    def test_fresh_variables_distinct(self):
        seen = {fresh_variable() for _ in range(100)}
        assert len(seen) == 100

    def test_fresh_variable_cannot_collide_with_parsed_names(self):
        # Parsed names never contain '#'.
        assert "#" in fresh_variable().name

    def test_fresh_constants_distinct(self):
        seen = {fresh_constant() for _ in range(100)}
        assert len(seen) == 100

    def test_fresh_constant_marker(self):
        assert "#" in fresh_constant().value


class TestGroundness:
    def test_constant_is_ground(self):
        assert is_ground_term(Constant("a"))

    def test_variable_is_not_ground(self):
        assert not is_ground_term(Variable("X"))

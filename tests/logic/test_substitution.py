"""Unit tests for substitutions: application, composition, restriction."""

import pytest

from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")


class TestConstruction:
    def test_empty(self):
        assert not Substitution.empty()
        assert len(Substitution.empty()) == 0

    def test_identity_bindings_dropped(self):
        subst = Substitution({X: X})
        assert not subst
        assert X not in subst

    def test_non_variable_key_rejected(self):
        with pytest.raises(TypeError):
            Substitution({a: b})

    def test_bind_returns_new(self):
        s0 = Substitution.empty()
        s1 = s0.bind(X, a)
        assert X not in s0
        assert s1[X] == a

    def test_bind_identity_removes(self):
        s = Substitution({X: a}).bind(X, X)
        assert X not in s


class TestApplication:
    def test_apply_constant_unchanged(self):
        assert Substitution({X: a}).apply_term(b) == b

    def test_apply_bound_variable(self):
        assert Substitution({X: a}).apply_term(X) == a

    def test_apply_unbound_variable(self):
        assert Substitution({X: a}).apply_term(Y) == Y

    def test_apply_follows_variable_chains(self):
        subst = Substitution({X: Y, Y: a})
        assert subst.apply_term(X) == a

    def test_apply_cyclic_chain_terminates(self):
        subst = Substitution({X: Y, Y: X})
        result = subst.apply_term(X)
        assert result in (X, Y)

    def test_apply_terms(self):
        subst = Substitution({X: a})
        assert subst.apply_terms((X, Y, b)) == (a, Y, b)


class TestComposition:
    def test_compose_applies_left_then_right(self):
        s1 = Substitution({X: Y})
        s2 = Substitution({Y: a})
        composed = s1.compose(s2)
        assert composed.apply_term(X) == a
        assert composed.apply_term(Y) == a

    def test_compose_with_empty_is_identity(self):
        s = Substitution({X: a})
        assert s.compose(Substitution.empty()) == s
        assert Substitution.empty().compose(s) == s

    def test_left_binding_takes_precedence(self):
        s1 = Substitution({X: a})
        s2 = Substitution({X: b})
        assert s1.compose(s2)[X] == a


class TestRestriction:
    def test_restrict(self):
        s = Substitution({X: a, Y: b})
        restricted = s.restrict([X])
        assert X in restricted
        assert Y not in restricted

    def test_without(self):
        s = Substitution({X: a, Y: b})
        remainder = s.without([X])
        assert X not in remainder
        assert remainder[Y] == b

    def test_is_ground_on(self):
        s = Substitution({X: a, Y: Z})
        assert s.is_ground_on([X])
        assert not s.is_ground_on([X, Y])
        assert not s.is_ground_on([Z])


class TestEquality:
    def test_equal_maps_equal(self):
        assert Substitution({X: a}) == Substitution({X: a})
        assert hash(Substitution({X: a})) == hash(Substitution({X: a}))

    def test_usable_in_sets(self):
        group = {Substitution({X: a}), Substitution({X: a}), Substitution({Y: b})}
        assert len(group) == 2

"""Unit tests for unification, matching, variants and subsumption."""

from repro.logic.formulas import Atom, Literal
from repro.logic.terms import Constant, Variable
from repro.logic.unify import match, mgu, rename_apart, subsumes, unifiable, variant

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def atom(pred, *args):
    return Atom(pred, args)


class TestMgu:
    def test_identical_atoms(self):
        assert mgu(atom("p", a), atom("p", a)) is not None
        assert len(mgu(atom("p", a), atom("p", a))) == 0

    def test_different_predicates_fail(self):
        assert mgu(atom("p", a), atom("q", a)) is None

    def test_different_arities_fail(self):
        assert mgu(atom("p", a), atom("p", a, b)) is None

    def test_variable_binds_constant(self):
        subst = mgu(atom("p", X), atom("p", a))
        assert subst[X] == a

    def test_constant_clash_fails(self):
        assert mgu(atom("p", a), atom("p", b)) is None

    def test_variable_variable(self):
        subst = mgu(atom("p", X), atom("p", Y))
        assert subst is not None
        assert subst.apply_term(X) == subst.apply_term(Y)

    def test_shared_variable_propagates(self):
        # p(X, X) vs p(a, Y) forces Y = a.
        subst = mgu(atom("p", X, X), atom("p", a, Y))
        assert subst.apply_term(Y) == a

    def test_inconsistent_shared_variable_fails(self):
        assert mgu(atom("p", X, X), atom("p", a, b)) is None

    def test_mgu_is_unifier(self):
        left = atom("p", X, b, Z)
        right = atom("p", a, Y, Y)
        subst = mgu(left, right)
        assert left.substitute(subst) == right.substitute(subst)

    def test_literals_require_same_polarity(self):
        pos = Literal(atom("p", X))
        neg = Literal(atom("p", a), False)
        assert mgu(pos, neg) is None
        assert mgu(pos, neg.complement()) is not None

    def test_unifiable_helper(self):
        assert unifiable(atom("p", X), atom("p", a))
        assert not unifiable(atom("p", a), atom("p", b))


class TestMatch:
    def test_match_binds_pattern_variables_only(self):
        subst = match(atom("p", X, b), atom("p", a, b))
        assert subst[X] == a

    def test_match_fails_on_target_variable_requirement(self):
        # match() is one-way: constants in the pattern must equal the target.
        assert match(atom("p", a), atom("p", X)) is None

    def test_match_respects_repeated_variables(self):
        assert match(atom("p", X, X), atom("p", a, a)) is not None
        assert match(atom("p", X, X), atom("p", a, b)) is None

    def test_match_polarity(self):
        pos = Literal(atom("p", X))
        neg = Literal(atom("p", a), False)
        assert match(pos, neg) is None


class TestVariantAndSubsumption:
    def test_variant_renaming(self):
        assert variant(atom("p", X, Y), atom("p", Y, X))
        assert variant(atom("p", X, Y), atom("p", Z, X))

    def test_not_variant_when_collapsing(self):
        assert not variant(atom("p", X, Y), atom("p", Z, Z))
        assert not variant(atom("p", X, X), atom("p", Y, Z))

    def test_not_variant_with_constants(self):
        assert not variant(atom("p", X), atom("p", a))

    def test_subsumes_instance(self):
        assert subsumes(atom("p", X, Y), atom("p", a, b))
        assert subsumes(atom("p", X, Y), atom("p", Z, Z))
        assert subsumes(atom("p", X, X), atom("p", a, a))

    def test_does_not_subsume_more_general(self):
        assert not subsumes(atom("p", a), atom("p", X))
        assert not subsumes(atom("p", X, X), atom("p", a, b))


class TestRenameApart:
    def test_no_collision_no_change(self):
        renamed = rename_apart(atom("p", X), [Y])
        assert renamed == atom("p", X)

    def test_collision_renamed(self):
        renamed = rename_apart(atom("p", X, Y), [X])
        assert renamed.pred == "p"
        new_first, second = renamed.args
        assert new_first != X
        assert second == Y

    def test_repeated_variable_renamed_consistently(self):
        renamed = rename_apart(atom("p", X, X), [X])
        first, second = renamed.args
        assert first == second
        assert first != X

"""Unit tests for the Section 2 normalization pipeline."""

import pytest

from repro.logic.formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Exists,
    Forall,
    Literal,
    Not,
    Or,
)
from repro.logic.normalize import (
    NormalizationError,
    distribute_or_over_and,
    miniscope,
    normalize_constraint,
    rectify,
    simplify,
    to_nnf,
)
from repro.logic.parser import parse_formula
from repro.logic.safety import check_constraint_safety
from repro.logic.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a = Constant("a")


def lit(pred, *args):
    return Literal(Atom(pred, args))


class TestNnf:
    def test_double_negation(self):
        assert to_nnf(Not(Not(lit("p", a)))) == lit("p", a)

    def test_de_morgan_and(self):
        formula = to_nnf(Not(And.make([lit("p", a), lit("q", a)])))
        assert formula == Or.make(
            [lit("p", a).complement(), lit("q", a).complement()]
        )

    def test_de_morgan_or(self):
        formula = to_nnf(Not(Or.make([lit("p", a), lit("q", a)])))
        assert isinstance(formula, And)

    def test_negated_quantifiers_flip(self):
        formula = to_nnf(Not(Forall([X], None, lit("p", X))))
        assert isinstance(formula, Exists)
        assert formula.matrix == lit("p", X).complement()

    def test_implication_eliminated(self):
        formula = to_nnf(parse_formula("p(a) -> q(a)"))
        assert formula == Or.make([lit("p", a).complement(), lit("q", a)])

    def test_iff_eliminated(self):
        formula = to_nnf(parse_formula("p(a) <-> q(a)"))
        assert isinstance(formula, And)

    def test_negated_true(self):
        assert to_nnf(Not(TRUE)) == FALSE


class TestRectify:
    def test_no_clash_unchanged(self):
        formula = parse_formula("forall X: p(X) and (exists Y: q(Y))")
        assert rectify(to_nnf(formula)) == to_nnf(formula)

    def test_clashing_quantifiers_renamed(self):
        formula = to_nnf(
            parse_formula("(exists X: p(X)) and (exists X: q(X))")
        )
        rectified = rectify(formula)
        first, second = rectified.children
        assert first.variables_tuple != second.variables_tuple

    def test_all_quantifiers_unique_after_rectification(self):
        formula = to_nnf(
            parse_formula(
                "(forall X: not p(X) or (exists X: q(X))) "
                "and (exists X: r(X))"
            )
        )
        rectified = rectify(formula)
        names = []

        def collect(node):
            if isinstance(node, (Exists, Forall)):
                names.extend(v.name for v in node.variables_tuple)
                collect(node.matrix)
            elif isinstance(node, (And, Or)):
                for child in node.children:
                    collect(child)

        collect(rectified)
        assert len(names) == len(set(names))


class TestMiniscope:
    def test_vacuous_quantifier_dropped(self):
        formula = Forall([X], None, lit("p", a))
        assert miniscope(formula) == lit("p", a)

    def test_forall_distributes_over_and(self):
        formula = Forall([X], None, And.make([lit("p", X), lit("q", X)]))
        out = miniscope(formula)
        assert isinstance(out, And)
        assert all(isinstance(c, Forall) for c in out.children)

    def test_exists_distributes_over_or(self):
        formula = Exists([X], None, Or.make([lit("p", X), lit("q", X)]))
        out = miniscope(formula)
        assert isinstance(out, Or)
        assert all(isinstance(c, Exists) for c in out.children)

    def test_pushes_into_unique_child(self):
        # exists X: (p(X) and r(a)) -> r(a) stays outside.
        formula = Exists([X], None, And.make([lit("p", X), lit("r", a)]))
        out = miniscope(formula)
        assert isinstance(out, And)
        kinds = {type(c) for c in out.children}
        assert Exists in kinds

    def test_blocks_split_variablewise(self):
        # exists X, Y: p(X) or q(Y) -- each variable pushes into its disjunct.
        formula = Exists([X, Y], None, Or.make([lit("p", X), lit("q", Y)]))
        out = miniscope(formula)
        assert isinstance(out, Or)
        assert all(isinstance(c, Exists) for c in out.children)


class TestDistribute:
    def test_distributes(self):
        formula = Or.make([lit("p", a), And.make([lit("q", a), lit("r", a)])])
        out = distribute_or_over_and(formula)
        assert isinstance(out, And)
        assert all(isinstance(c, Or) for c in out.children)

    def test_idempotent_on_cnf(self):
        formula = And.make(
            [Or.make([lit("p", a), lit("q", a)]), lit("r", a)]
        )
        assert distribute_or_over_and(formula) == formula


class TestSimplify:
    def test_true_absorbed_in_and(self):
        assert simplify(And.make([lit("p", a), TRUE])) == lit("p", a)

    def test_false_dominates_and(self):
        assert simplify(And.make([lit("p", a), FALSE])) == FALSE

    def test_duplicates_dropped(self):
        assert simplify(Or.make([lit("p", a), lit("p", a)])) == lit("p", a)


class TestNormalizeConstraint:
    def test_paper_constraint_c1(self):
        # C1: forall X: p(X) -> q(X)  ==> forall([X], p(X), q(X))
        formula = normalize_constraint(parse_formula("forall X: p(X) -> q(X)"))
        assert isinstance(formula, Forall)
        assert formula.restriction == (Atom("p", (X,)),)
        assert formula.matrix == lit("q", X)
        check_constraint_safety(formula)

    def test_paper_constraint_c2(self):
        # C2: forall X,Y: not p(X,Y) or exists Z (q(X,Z) and not s(Y,Z,a))
        formula = normalize_constraint(
            parse_formula(
                "forall X, Y: not p(X, Y) or "
                "(exists Z: q(X, Z) and not s(Y, Z, a))"
            )
        )
        assert isinstance(formula, Forall)
        assert formula.restriction == (Atom("p", (X, Y)),)
        inner = formula.matrix
        assert isinstance(inner, Exists)
        assert inner.restriction == (Atom("q", (X, Z)),)
        assert inner.matrix == Literal(Atom("s", (Y, Z, a)), False)
        check_constraint_safety(formula)

    def test_section5_constraint_4(self):
        formula = normalize_constraint(
            parse_formula("forall X: not subordinate(X, X)")
        )
        assert isinstance(formula, Forall)
        assert formula.restriction == (Atom("subordinate", (X, X)),)
        assert formula.matrix == FALSE

    def test_section5_constraint_5(self):
        formula = normalize_constraint(parse_formula("exists X: employee(X)"))
        assert isinstance(formula, Exists)
        assert formula.restriction == (Atom("employee", (X,)),)
        assert formula.matrix == TRUE

    def test_nested_universals_merge_for_coverage(self):
        # forall X: (forall Y: r(X, Y) -> s(X)) needs the merged block
        # [X, Y] restricted by r(X, Y).
        formula = normalize_constraint(
            parse_formula("forall X: forall Y: r(X, Y) -> s(X)")
        )
        assert isinstance(formula, Forall)
        assert set(formula.variables_tuple) == {X, Y}
        assert formula.restriction == (Atom("r", (X, Y)),)

    def test_implication_of_disjunction_splits(self):
        # forall X: (p(X) or q(X)) -> r(X) normalizes to a conjunction of
        # two restricted universals.
        formula = normalize_constraint(
            parse_formula("forall X: (p(X) or q(X)) -> r(X)")
        )
        assert isinstance(formula, And)
        assert all(isinstance(c, Forall) for c in formula.children)
        for child in formula.children:
            check_constraint_safety(child)

    def test_existential_disjunction_splits(self):
        formula = normalize_constraint(
            parse_formula("exists X: p(X) or q(X)")
        )
        assert isinstance(formula, Or)
        assert all(isinstance(c, Exists) for c in formula.children)

    def test_guard_atoms_move_into_restriction(self):
        formula = normalize_constraint(
            parse_formula("exists X: p(X) and q(X) and not r(X)")
        )
        assert isinstance(formula, Exists)
        assert set(formula.restriction) == {Atom("p", (X,)), Atom("q", (X,))}
        assert formula.matrix == Literal(Atom("r", (X,)), False)

    def test_domain_dependent_universal_rejected(self):
        with pytest.raises(NormalizationError):
            normalize_constraint(parse_formula("forall X: p(X)"))

    def test_domain_dependent_existential_rejected(self):
        with pytest.raises(NormalizationError):
            normalize_constraint(parse_formula("exists X: not p(X)"))

    def test_open_formula_rejected(self):
        with pytest.raises(NormalizationError):
            normalize_constraint(parse_formula("p(X)"))

    def test_ground_constraint_passes_through(self):
        formula = normalize_constraint(parse_formula("p(a) -> q(a)"))
        assert formula == Or.make([lit("p", a).complement(), lit("q", a)])

    def test_functional_dependency(self):
        # FD: manages(E, D1) and manages(E, D2) -> eq is not expressible
        # without equality; the standard encoding uses a same() predicate.
        formula = normalize_constraint(
            parse_formula(
                "forall E, D1, D2: manages(E, D1) and manages(E, D2) "
                "-> same(D1, D2)"
            )
        )
        assert isinstance(formula, Forall)
        assert len(formula.restriction) == 2

    def test_normalization_idempotent_on_output(self):
        source = (
            "forall X: employee(X) -> exists Y: department(Y) and member(X, Y)"
        )
        once = normalize_constraint(parse_formula(source))
        # The output is already restricted; checking safety suffices (the
        # pipeline refuses re-normalizing restricted quantifiers by design).
        check_constraint_safety(once)

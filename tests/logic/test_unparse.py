"""Unit and round-trip tests for the unparser."""

from hypothesis import given, settings

from repro.datalog.database import DeductiveDatabase
from repro.logic.formulas import Atom, Exists
from repro.logic.normalize import normalize_constraint
from repro.logic.parser import parse_formula
from repro.logic.terms import Constant, Variable
from repro.logic.unparse import unparse, unparse_atom, unparse_term

from tests.property.strategies import guarded_constraints


class TestTerms:
    def test_bare_constant(self):
        assert unparse_term(Constant("ann")) == "ann"

    def test_integer_constant(self):
        assert unparse_term(Constant(42)) == "42"

    def test_quoted_constant(self):
        assert unparse_term(Constant("R & D")) == "'R & D'"

    def test_quoting_escapes(self):
        assert unparse_term(Constant("it's")) == "'it\\'s'"

    def test_uppercase_valued_constant_quoted(self):
        # A constant whose value looks like a variable must be quoted.
        assert unparse_term(Constant("Ann")) == "'Ann'"

    def test_variable(self):
        assert unparse_term(Variable("X")) == "X"


class TestAtomsAndFormulas:
    def test_atom(self):
        atom = Atom("works_in", (Constant("ann"), Constant("sales")))
        assert unparse_atom(atom) == "works_in(ann, sales)"

    def test_zero_arity(self):
        assert unparse_atom(Atom("halt", ())) == "halt"

    def test_literal_roundtrip(self):
        for text in ["p(a)", "not p(a)", "true", "false"]:
            formula = parse_formula(text)
            assert parse_formula(unparse(formula)) == formula

    def test_restricted_universal_prints_as_implication(self):
        formula = normalize_constraint(parse_formula("forall X: p(X) -> q(X)"))
        text = unparse(formula)
        assert "->" in text
        assert normalize_constraint(parse_formula(text)) == formula

    def test_restricted_existential_prints_as_conjunction(self):
        formula = normalize_constraint(
            parse_formula("exists X: p(X) and not q(X)")
        )
        text = unparse(formula)
        assert normalize_constraint(parse_formula(text)) == formula

    def test_unsafe_variables_sanitized(self):
        from repro.logic.terms import fresh_variable

        v = fresh_variable("U")
        formula = Exists([v], (Atom("p", (v,)),), parse_formula("true"))
        text = unparse(formula)
        assert "#" not in text
        parse_formula(text)  # must be parseable


class TestRoundTripProperty:
    @given(guarded_constraints())
    @settings(max_examples=150)
    def test_normalized_roundtrip(self, formula):
        normalized = normalize_constraint(formula)
        text = unparse(normalized)
        reparsed = normalize_constraint(parse_formula(text))
        assert reparsed == normalized


class TestDatabaseRoundTrip:
    SOURCE = """
    employee(ann).
    leads(ann, sales).
    member(X, Y) :- leads(X, Y).
    forall X, Y: member(X, Y) -> employee(X).
    exists X: employee(X).
    """

    def test_to_source_roundtrip(self):
        db = DeductiveDatabase.from_source(self.SOURCE)
        text = db.to_source()
        again = DeductiveDatabase.from_source(text)
        assert set(again.facts) == set(db.facts)
        assert again.program == db.program
        assert [c.formula for c in again.constraints] == [
            c.formula for c in db.constraints
        ]

    def test_roundtrip_without_recorded_source(self):
        db = DeductiveDatabase.from_source("p(a).")
        db.add_constraint(
            normalize_constraint(parse_formula("forall X: p(X) -> q(X)"))
        )
        again = DeductiveDatabase.from_source(db.to_source())
        assert [c.formula for c in again.constraints] == [
            c.formula for c in db.constraints
        ]

    def test_empty_database(self):
        assert DeductiveDatabase().to_source() == ""

"""Unit tests for the formula AST: construction, variables, substitution."""

import pytest

from repro.logic.formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Exists,
    Forall,
    Iff,
    Implies,
    Literal,
    Not,
    Or,
    conjuncts,
    disjuncts,
    walk_literals,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")

p_X = Literal(Atom("p", (X,)))
q_XY = Literal(Atom("q", (X, Y)))
r_Y = Literal(Atom("r", (Y,)))


class TestAtomsAndLiterals:
    def test_atom_equality(self):
        assert Atom("p", (X,)) == Atom("p", (X,))
        assert Atom("p", (X,)) != Atom("p", (Y,))
        assert Atom("p", (X,)) != Atom("q", (X,))

    def test_atom_groundness(self):
        assert Atom("p", (a, b)).is_ground()
        assert not Atom("p", (a, X)).is_ground()

    def test_literal_complement(self):
        lit = Literal(Atom("p", (a,)))
        assert lit.complement().positive is False
        assert lit.complement().complement() == lit

    def test_substitute_atom(self):
        atom = Atom("q", (X, Y))
        out = atom.substitute(Substitution({X: a}))
        assert out == Atom("q", (a, Y))

    def test_zero_arity_atom(self):
        atom = Atom("halted")
        assert atom.is_ground()
        assert str(atom) == "halted"


class TestConnectives:
    def test_and_requires_two_children(self):
        with pytest.raises(ValueError):
            And([p_X])

    def test_make_flattens(self):
        nested = And.make([p_X, And.make([q_XY, r_Y])])
        assert len(nested.children) == 3

    def test_make_degenerate(self):
        assert And.make([]) == TRUE
        assert Or.make([]) == FALSE
        assert And.make([p_X]) == p_X

    def test_conjuncts_disjuncts(self):
        conj = And.make([p_X, q_XY])
        assert conjuncts(conj) == (p_X, q_XY)
        assert conjuncts(p_X) == (p_X,)
        disj = Or.make([p_X, q_XY])
        assert disjuncts(disj) == (p_X, q_XY)

    def test_substitution_distributes(self):
        formula = And.make([p_X, q_XY])
        out = formula.substitute(Substitution({X: a}))
        assert out == And.make(
            [Literal(Atom("p", (a,))), Literal(Atom("q", (a, Y)))]
        )


class TestQuantifiers:
    def test_quantifier_requires_variables(self):
        with pytest.raises(ValueError):
            Forall([], None, p_X)

    def test_duplicate_bound_variable_rejected(self):
        with pytest.raises(ValueError):
            Exists([X, X], None, p_X)

    def test_free_variables_exclude_bound(self):
        formula = Exists([Y], None, q_XY)
        assert formula.free_variables() == {X}
        assert formula.variables() == {X, Y}

    def test_restricted_quantifier_free_variables(self):
        formula = Forall([X], (Atom("p", (X,)),), q_XY)
        assert formula.free_variables() == {Y}

    def test_substitute_shields_bound_variables(self):
        formula = Exists([Y], None, q_XY)
        out = formula.substitute(Substitution({X: a, Y: b}))
        assert out == Exists([Y], None, Literal(Atom("q", (a, Y))))

    def test_substitute_restriction(self):
        formula = Forall([Y], (Atom("q", (X, Y)),), r_Y)
        out = formula.substitute(Substitution({X: a}))
        assert out.restriction == (Atom("q", (a, Y)),)

    def test_restriction_conjunction(self):
        formula = Exists(
            [X, Y], (Atom("p", (X,)), Atom("q", (X, Y))), TRUE
        )
        conj = formula.restriction_conjunction()
        assert conj == And.make(
            [Literal(Atom("p", (X,))), Literal(Atom("q", (X, Y)))]
        )

    def test_closedness(self):
        closed = Forall([X], (Atom("p", (X,)),), FALSE)
        assert closed.is_closed()
        open_formula = Forall([X], (Atom("q", (X, Y)),), FALSE)
        assert not open_formula.is_closed()


class TestInputLayerNodes:
    def test_implies_str(self):
        formula = Implies(p_X, r_Y)
        assert "->" in str(formula)

    def test_iff_equality(self):
        assert Iff(p_X, r_Y) == Iff(p_X, r_Y)
        assert Iff(p_X, r_Y) != Iff(r_Y, p_X)

    def test_not_free_variables(self):
        assert Not(q_XY).free_variables() == {X, Y}


class TestWalkLiterals:
    def test_walks_connectives(self):
        formula = And.make([p_X, Or.make([q_XY, r_Y.complement()])])
        literals = list(walk_literals(formula))
        assert p_X in literals
        assert q_XY in literals
        assert r_Y.complement() in literals

    def test_walks_restrictions_with_polarity(self):
        # forall restriction atoms appear negatively; exists positively.
        univ = Forall([X], (Atom("p", (X,)),), FALSE)
        assert Literal(Atom("p", (X,)), False) in list(walk_literals(univ))
        exis = Exists([X], (Atom("p", (X,)),), TRUE)
        assert Literal(Atom("p", (X,)), True) in list(walk_literals(exis))

    def test_paper_constraint_c2_literals(self):
        # C2: forall X,Y: not p(X,Y) or exists Z (q(X,Z) and not s(Y,Z,a))
        c2 = Forall(
            [X, Y],
            (Atom("p", (X, Y)),),
            Exists(
                [Z],
                (Atom("q", (X, Z)),),
                Literal(Atom("s", (Y, Z, a)), False),
            ),
        )
        literals = set(walk_literals(c2))
        assert literals == {
            Literal(Atom("p", (X, Y)), False),
            Literal(Atom("q", (X, Z)), True),
            Literal(Atom("s", (Y, Z, a)), False),
        }

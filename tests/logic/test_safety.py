"""Unit tests for range restriction and domain-independence checks."""

import pytest

from repro.logic.formulas import FALSE, TRUE, Atom, Forall, Literal
from repro.logic.parser import parse_formula, parse_rule
from repro.logic.normalize import normalize_constraint
from repro.logic.safety import (
    SafetyError,
    check_constraint_safety,
    check_rule_range_restricted,
    constraint_predicates,
    is_domain_independent,
)
from repro.logic.terms import Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestRuleRangeRestriction:
    def check(self, text):
        rule = parse_rule(text)
        check_rule_range_restricted(rule.head, rule.body)

    def test_paper_rule_ok(self):
        self.check("member(X, Y) :- leads(X, Y)")

    def test_head_variable_not_in_body_rejected(self):
        with pytest.raises(SafetyError):
            self.check("p(X, Y) :- q(X)")

    def test_negative_literal_variable_rejected(self):
        with pytest.raises(SafetyError):
            self.check("p(X) :- q(X), not r(Y)")

    def test_negative_literal_covered_ok(self):
        self.check("p(X) :- q(X, Y), not r(Y)")

    def test_ground_rule_ok(self):
        self.check("p(a) :- q(b)")

    def test_constant_head_with_empty_support(self):
        # Head variables all ground; body positive literal gives range.
        self.check("flag :- q(X)")


class TestConstraintSafety:
    def test_normalized_output_is_safe(self):
        formula = normalize_constraint(
            parse_formula(
                "forall X: employee(X) -> exists Y: "
                "department(Y) and member(X, Y)"
            )
        )
        check_constraint_safety(formula)

    def test_unrestricted_quantifier_rejected(self):
        with pytest.raises(SafetyError):
            check_constraint_safety(Forall([X], None, Literal(Atom("p", (X,)))))

    def test_open_formula_rejected(self):
        with pytest.raises(SafetyError):
            check_constraint_safety(Literal(Atom("p", (X,))))

    def test_uncovered_variable_rejected(self):
        bad = Forall([X, Y], (Atom("p", (X,)),), FALSE)
        with pytest.raises(SafetyError):
            check_constraint_safety(bad)

    def test_is_domain_independent(self):
        good = Forall([X], (Atom("p", (X,)),), Literal(Atom("q", (X,))))
        assert is_domain_independent(good)
        bad = Forall([X], None, Literal(Atom("p", (X,))))
        assert not is_domain_independent(bad)


class TestConstraintPredicates:
    def test_collects_all_relations(self):
        formula = normalize_constraint(
            parse_formula(
                "forall X: employee(X) -> exists Y: "
                "department(Y) and member(X, Y)"
            )
        )
        assert constraint_predicates(formula) == {
            "employee",
            "department",
            "member",
        }

    def test_ground_constraint(self):
        formula = normalize_constraint(parse_formula("p(a) -> q(a)"))
        assert constraint_predicates(formula) == {"p", "q"}

    def test_constants_have_no_predicates(self):
        assert constraint_predicates(TRUE) == set()

"""Unit tests for the surface-syntax parser."""

import pytest

from repro.logic.formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Exists,
    Forall,
    Iff,
    Implies,
    Literal,
    Not,
    Or,
)
from repro.logic.parser import (
    ParseError,
    parse_atom,
    parse_constraint,
    parse_fact,
    parse_formula,
    parse_literal,
    parse_program,
    parse_rule,
)
from repro.logic.terms import Constant, Variable

X, Y = Variable("X"), Variable("Y")


class TestAtoms:
    def test_simple(self):
        assert parse_atom("employee(ann)") == Atom("employee", (Constant("ann"),))

    def test_variables_uppercase(self):
        assert parse_atom("leads(X, sales)") == Atom(
            "leads", (X, Constant("sales"))
        )

    def test_integers(self):
        assert parse_atom("age(ann, 42)") == Atom(
            "age", (Constant("ann"), Constant(42))
        )

    def test_negative_integers(self):
        assert parse_atom("delta(-3)") == Atom("delta", (Constant(-3),))

    def test_quoted_constants(self):
        assert parse_atom("dept('R & D')") == Atom("dept", (Constant("R & D"),))
        assert parse_atom('dept("R & D")') == Atom("dept", (Constant("R & D"),))

    def test_zero_arity(self):
        assert parse_atom("shutdown") == Atom("shutdown", ())

    def test_uppercase_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("Employee(ann)")

    def test_underscore_is_fresh_each_time(self):
        atom = parse_atom("p(_, _)")
        first, second = atom.args
        assert first != second

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("p(a) q(b)")


class TestLiterals:
    def test_positive(self):
        assert parse_literal("p(a)").positive

    def test_negative_not(self):
        literal = parse_literal("not p(a)")
        assert not literal.positive
        assert literal.atom == Atom("p", (Constant("a"),))

    def test_negative_tilde(self):
        assert not parse_literal("~p(a)").positive


class TestFacts:
    def test_ground_fact(self):
        assert parse_fact("employee(ann)") == Atom(
            "employee", (Constant("ann"),)
        )

    def test_nonground_rejected(self):
        with pytest.raises(ParseError):
            parse_fact("employee(X)")


class TestRules:
    def test_paper_rule(self):
        rule = parse_rule("member(X, Y) :- leads(X, Y)")
        assert rule.head == Atom("member", (X, Y))
        assert rule.body == (Literal(Atom("leads", (X, Y))),)

    def test_negation_in_body(self):
        rule = parse_rule("idle(X) :- employee(X), not member(X, Y)")
        assert rule.body[1] == Literal(Atom("member", (X, Y)), False)

    def test_and_keyword_in_body(self):
        rule = parse_rule("p(X) :- q(X) and r(X)")
        assert len(rule.body) == 2

    def test_trailing_dot(self):
        rule = parse_rule("p(X) :- q(X).")
        assert rule.head == Atom("p", (X,))


class TestFormulas:
    def test_conjunction_variants(self):
        for text in ["p(a) and q(b)", "p(a) & q(b)", "p(a), q(b)"]:
            formula = parse_formula(text)
            assert isinstance(formula, And)
            assert len(formula.children) == 2

    def test_disjunction_variants(self):
        for text in ["p(a) or q(b)", "p(a) | q(b)"]:
            assert isinstance(parse_formula(text), Or)

    def test_precedence_and_binds_tighter_than_or(self):
        formula = parse_formula("p(a) or q(b) and r(c)")
        assert isinstance(formula, Or)
        assert isinstance(formula.children[1], And)

    def test_implication_right_associative(self):
        formula = parse_formula("p(a) -> q(b) -> r(c)")
        assert isinstance(formula, Implies)
        assert isinstance(formula.consequent, Implies)

    def test_iff(self):
        assert isinstance(parse_formula("p(a) <-> q(b)"), Iff)

    def test_negation_of_literal_is_literal(self):
        formula = parse_formula("not p(a)")
        assert isinstance(formula, Literal)
        assert not formula.positive

    def test_negation_of_compound_is_not_node(self):
        formula = parse_formula("not (p(a) and q(b))")
        assert isinstance(formula, Not)

    def test_true_false(self):
        assert parse_formula("true") == TRUE
        assert parse_formula("false") == FALSE

    def test_quantifier_scope_extends_right(self):
        formula = parse_formula("forall X: p(X) -> q(X)")
        assert isinstance(formula, Forall)
        assert isinstance(formula.matrix, Implies)

    def test_quantifier_multiple_variables(self):
        formula = parse_formula("forall X, Y: p(X, Y)")
        assert formula.variables_tuple == (X, Y)

    def test_quantifier_bracketed_variables(self):
        formula = parse_formula("exists [X, Y]: p(X, Y)")
        assert isinstance(formula, Exists)
        assert formula.variables_tuple == (X, Y)

    def test_nested_quantifiers(self):
        formula = parse_formula("forall X: p(X) -> exists Y: q(X, Y)")
        assert isinstance(formula.matrix.consequent, Exists)

    def test_parenthesized_quantifier_inside_conjunction(self):
        formula = parse_formula("(exists X: p(X)) and q(a)")
        assert isinstance(formula, And)
        assert isinstance(formula.children[0], Exists)

    def test_parse_error_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_formula("p(a) ->")
        assert "line 1" in str(excinfo.value)

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            parse_formula("p(a) ? q(b)")


class TestConstraints:
    def test_closed_accepted(self):
        parse_constraint("forall X: employee(X) -> exists Y: member(X, Y)")

    def test_open_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("employee(X)")

    def test_paper_constraint_1(self):
        # (1) of Section 5.
        formula = parse_constraint(
            "forall X: employee(X) -> "
            "exists Y: department(Y) and member(X, Y)"
        )
        assert isinstance(formula, Forall)


class TestPrograms:
    SOURCE = """
    % the Section 5 database
    employee(ann).
    leads(ann, sales).          # a second comment style
    member(X, Y) :- leads(X, Y).
    forall X: not subordinate(X, X).
    exists X: employee(X).
    """

    def test_classification(self):
        program = parse_program(self.SOURCE)
        assert len(program.facts) == 2
        assert len(program.rules) == 1
        assert len(program.constraints) == 2

    def test_fact_contents(self):
        program = parse_program(self.SOURCE)
        assert Atom("employee", (Constant("ann"),)) in program.facts

    def test_rule_contents(self):
        program = parse_program(self.SOURCE)
        rule = program.rules[0]
        assert rule.head.pred == "member"

    def test_empty_program(self):
        program = parse_program("   % nothing here\n")
        assert program == ((), (), ())

    def test_missing_dot_between_statements(self):
        with pytest.raises(ParseError):
            parse_program("p(a) q(b).")

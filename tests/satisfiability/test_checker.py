"""Integration tests for the satisfiability checker."""

import pytest

from repro.satisfiability.checker import (
    SatisfiabilityChecker,
    check_satisfiability,
)


class TestTrivialCases:
    def test_empty_set_satisfiable_by_empty_db(self):
        result = check_satisfiability("")
        assert result.satisfiable
        assert len(result.model) == 0

    def test_universals_only_satisfiable_by_empty_db(self):
        # Section 4: FDs and the like hold vacuously without facts.
        result = check_satisfiability(
            """
            forall X, Y: p(X, Y) -> q(X).
            forall X: q(X) -> not r(X).
            """
        )
        assert result.satisfiable
        assert len(result.model) == 0

    def test_existential_forces_facts(self):
        result = check_satisfiability("exists X: p(X).")
        assert result.satisfiable
        assert len(result.model) == 1

    def test_ground_contradiction(self):
        result = check_satisfiability(
            """
            exists X: p(X).
            forall X: not p(X).
            """
        )
        assert result.unsatisfiable


class TestPropagationChains:
    def test_chain_of_universals(self):
        result = check_satisfiability(
            """
            exists X: a(X).
            forall X: a(X) -> b(X).
            forall X: b(X) -> c(X).
            """
        )
        assert result.satisfiable
        preds = {f.pred for f in result.model}
        assert preds == {"a", "b", "c"}

    def test_chain_into_contradiction(self):
        result = check_satisfiability(
            """
            exists X: a(X).
            forall X: a(X) -> b(X).
            forall X: not b(X).
            """
        )
        assert result.unsatisfiable

    def test_disjunctive_escape(self):
        # One branch contradicts, the other survives.
        result = check_satisfiability(
            """
            exists X: a(X).
            forall X: a(X) -> b(X) or c(X).
            forall X: not b(X).
            """
        )
        assert result.satisfiable
        assert {f.pred for f in result.model} == {"a", "c"}


class TestFiniteModelsNeedReuse:
    SERIAL = """
    exists X: p(X).
    forall X: p(X) -> exists Y: p(Y) and r(X, Y).
    """

    def test_reuse_finds_one_element_loop(self):
        result = check_satisfiability(self.SERIAL)
        assert result.satisfiable
        assert len(result.model.facts("p")) == 1
        # The loop fact r(c, c).
        (r_fact,) = result.model.facts("r")
        assert r_fact.args[0] == r_fact.args[1]

    def test_tableaux_baseline_diverges(self):
        checker = SatisfiabilityChecker.from_source(
            self.SERIAL, existential_reuse=False
        )
        result = checker.check(max_fresh_constants=6, deepening=False)
        assert result.status == "unknown"

    def test_two_element_model_when_irreflexive(self):
        result = check_satisfiability(
            self.SERIAL + "forall X: not r(X, X)."
        )
        assert result.satisfiable
        assert len(result.model.facts("p")) == 2


class TestRulesAsClauses:
    def test_positive_rule_head_materializes(self):
        result = check_satisfiability(
            """
            member(X, Y) :- leads(X, Y).
            exists X, Y: leads(X, Y).
            forall X, Y: member(X, Y) -> good(Y).
            """
        )
        assert result.satisfiable
        assert len(result.model.facts("member")) == 1
        assert len(result.model.facts("good")) == 1

    def test_rule_plus_constraint_contradiction(self):
        result = check_satisfiability(
            """
            member(X, Y) :- leads(X, Y).
            exists X, Y: leads(X, Y).
            forall X, Y: not member(X, Y).
            """
        )
        assert result.unsatisfiable


class TestNegationRuleAlternatives:
    """The completeness gap motivating clausal rule treatment: with
    derivation-based (NAF) evaluation, p(c) <- q(c) ∧ ¬r(c) silently
    satisfies the completion clause through the derived head, so the
    'make r(c) true instead' alternative is never explored and the set
    below would be wrongly refuted. The clausal semantics finds the
    model {q(c), r(c)}."""

    def test_negative_body_alternative_explored(self):
        result = check_satisfiability(
            """
            p(X) :- q(X), not r(X).
            exists X: q(X).
            forall X: not p(X).
            """
        )
        assert result.satisfiable
        assert len(result.model.facts("q")) == 1
        assert len(result.model.facts("r")) == 1
        assert len(result.model.facts("p")) == 0


class TestFunctionalDependencies:
    def test_fd_with_same_encoding(self):
        # manages is functional; same/2 is axiomatized reflexively over
        # mentioned employees via the constraints below.
        result = check_satisfiability(
            """
            exists X: manages(X, d1).
            forall E, D1, D2: manages(E, D1) and manages(E, D2) -> same(D1, D2).
            forall D, D2: same(D, D2) -> not distinct(D, D2).
            """
        )
        assert result.satisfiable


class TestResultMetadata:
    def test_stats_present(self):
        result = check_satisfiability("exists X: p(X).")
        assert result.stats["assertions"] >= 1
        assert "fresh_constants" in result.stats

    def test_trace_collected_when_enabled(self):
        checker = SatisfiabilityChecker.from_source(
            "exists X: p(X).", trace=True
        )
        result = checker.check()
        assert result.trace
        assert any("assert" in line for line in result.trace)

    def test_facts_rejected_in_source(self):
        with pytest.raises(ValueError):
            SatisfiabilityChecker.from_source("p(a). exists X: p(X).")

    def test_model_satisfies_all_constraints(self):
        from repro.satisfiability.bruteforce import is_model

        checker = SatisfiabilityChecker.from_source(
            """
            exists X: a(X).
            forall X: a(X) -> b(X) or c(X).
            forall X: c(X) -> d(X).
            """
        )
        result = checker.check()
        assert result.satisfiable
        assert is_model(result.model, checker.constraints)


class TestDeepening:
    def test_unsat_detected_without_budget_noise(self):
        result = check_satisfiability(
            """
            exists X: p(X).
            forall X: p(X) -> q(X).
            forall X: q(X) -> not p(X).
            """
        )
        assert result.unsatisfiable

    def test_unknown_when_all_models_infinite(self):
        # Successor-style axiom of infinity: every p-node needs a
        # strictly 'later' one and r is irreflexive + transitive-ish
        # enough to forbid loops.
        result = check_satisfiability(
            """
            exists X: p(X).
            forall X: p(X) -> exists Y: p(Y) and r(X, Y).
            forall X: not r(X, X).
            forall X, Y: r(X, Y) -> not r(Y, X).
            forall [X, Y, Z]: r(X, Y) and r(Y, Z) -> r(X, Z).
            """,
            max_fresh_constants=4,
        )
        assert result.status == "unknown"

"""Unit tests for the trail-backed sample database."""

from repro.logic.normalize import normalize_constraint
from repro.logic.parser import parse_fact, parse_formula
from repro.satisfiability.sample_db import SampleDatabase


class TestTrail:
    def test_assume_and_undo(self):
        sample = SampleDatabase()
        mark = sample.mark()
        assert sample.assume(parse_fact("p(a)"), 0)
        assert sample.holds(parse_fact("p(a)"))
        sample.undo_to(mark)
        assert not sample.holds(parse_fact("p(a)"))
        assert len(sample) == 0

    def test_duplicate_assume_not_trailed(self):
        sample = SampleDatabase()
        sample.assume(parse_fact("p(a)"), 0)
        mark = sample.mark()
        assert not sample.assume(parse_fact("p(a)"), 1)
        sample.undo_to(mark)
        # The original assertion survives — only the no-op was undone.
        assert sample.holds(parse_fact("p(a)"))

    def test_nested_marks(self):
        sample = SampleDatabase()
        sample.assume(parse_fact("p(a)"), 0)
        outer = sample.mark()
        sample.assume(parse_fact("p(b)"), 1)
        inner = sample.mark()
        sample.assume(parse_fact("p(c)"), 2)
        sample.undo_to(inner)
        assert sample.holds(parse_fact("p(b)"))
        assert not sample.holds(parse_fact("p(c)"))
        sample.undo_to(outer)
        assert sample.holds(parse_fact("p(a)"))
        assert len(sample) == 1

    def test_generation_levels(self):
        sample = SampleDatabase()
        sample.assume(parse_fact("p(a)"), 0)
        sample.assume(parse_fact("p(b)"), 1)
        sample.assume(parse_fact("q(a)"), 1)
        assert sample.generated_at(0) == [parse_fact("p(a)")]
        assert set(sample.generated_at(1)) == {
            parse_fact("p(b)"),
            parse_fact("q(a)"),
        }

    def test_generation_cleared_on_undo(self):
        sample = SampleDatabase()
        mark = sample.mark()
        sample.assume(parse_fact("p(a)"), 3)
        sample.undo_to(mark)
        assert sample.generated_at(3) == []


class TestEvaluation:
    def test_formula_evaluation_tracks_live_store(self):
        sample = SampleDatabase()
        formula = normalize_constraint(parse_formula("exists X: p(X)"))
        assert not sample.evaluate(formula)
        sample.assume(parse_fact("p(a)"), 0)
        assert sample.evaluate(formula)
        sample.undo_to(0)
        assert not sample.evaluate(formula)

    def test_universals_hold_on_empty(self):
        # Section 4: every universal formula is satisfied in an empty
        # database.
        sample = SampleDatabase()
        formula = normalize_constraint(
            parse_formula("forall X: p(X) -> q(X)")
        )
        assert sample.evaluate(formula)

    def test_snapshot_is_independent(self):
        sample = SampleDatabase()
        sample.assume(parse_fact("p(a)"), 0)
        snap = sample.snapshot()
        sample.undo_to(0)
        assert snap.contains(parse_fact("p(a)"))

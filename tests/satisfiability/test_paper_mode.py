"""The paper-literal rule treatment ('paper' mode) as an ablation.

Paper mode follows Section 4 exactly: rules derive during evaluation
(Prolog-NAF style), completion constraints only for rules with negative
bodies, violation detection via induced updates (Proposition 2). On
positive rules it agrees with the default clausal mode; on rules with
negation it loses finite-satisfiability completeness — the documented
gap that motivates the clausal default.
"""

import pytest

from repro.logic.parser import parse_program
from repro.datalog.program import Program
from repro.satisfiability.checker import SatisfiabilityChecker
from repro.workloads.theorem_proving import SECTION5, SECTION5_WEAKENED


def paper_checker(source, **kwargs):
    parsed = parse_program(source)
    assert not parsed.facts
    return SatisfiabilityChecker(
        list(parsed.constraints),
        Program.from_parsed(parsed.rules),
        rule_treatment="paper",
        **kwargs,
    )


class TestPositiveRulesAgree:
    def test_section5_unsatisfiable(self):
        result = paper_checker(SECTION5).check(max_fresh_constants=6)
        assert result.unsatisfiable

    def test_section5_weakened_satisfiable(self):
        result = paper_checker(SECTION5_WEAKENED).check(max_fresh_constants=6)
        assert result.satisfiable

    def test_derivation_satisfies_existential(self):
        # The §5 trace point: member(c, b) is derivable from leads(c, b),
        # so constraint (1)'s instance holds without asserting member.
        source = """
        member(X, Y) :- leads(X, Y).
        exists X, Y: leads(X, Y).
        forall X, Y: leads(X, Y) -> (exists Z: member(X, Z)).
        """
        result = paper_checker(source).check(max_fresh_constants=4)
        assert result.satisfiable
        # member facts exist in the canonical model without being
        # explicitly asserted.
        assert len(result.model.facts("member")) >= 1

    def test_rule_contradiction_detected(self):
        source = """
        member(X, Y) :- leads(X, Y).
        exists X, Y: leads(X, Y).
        forall X, Y: not member(X, Y).
        """
        result = paper_checker(source).check(max_fresh_constants=4)
        assert result.unsatisfiable

    @pytest.mark.parametrize(
        "source, expected",
        [
            ("exists X: p(X).", "satisfiable"),
            ("exists X: p(X). forall X: not p(X).", "unsatisfiable"),
            (
                """
                q(X) :- p(X).
                exists X: p(X).
                forall X: q(X) -> r(X).
                """,
                "satisfiable",
            ),
        ],
    )
    def test_agreement_with_clausal_mode(self, source, expected):
        paper = paper_checker(source).check(max_fresh_constants=4)
        clausal = SatisfiabilityChecker.from_source(source).check(
            max_fresh_constants=4
        )
        assert paper.status == expected
        assert clausal.status == expected


class TestNegationGap:
    """The completeness gap: {q(c), r(c)} is a model of the set below —
    the clausal mode finds it; paper mode derives p(c) by NAF, never
    explores asserting r(c), and wrongly refutes."""

    SOURCE = """
    p(X) :- q(X), not r(X).
    exists X: q(X).
    forall X: not p(X).
    """

    def test_clausal_mode_finds_the_model(self):
        result = SatisfiabilityChecker.from_source(self.SOURCE).check(
            max_fresh_constants=3
        )
        assert result.satisfiable
        assert len(result.model.facts("r")) == 1

    def test_paper_mode_wrongly_refutes(self):
        result = paper_checker(self.SOURCE).check(max_fresh_constants=3)
        assert result.unsatisfiable  # the documented incompleteness

    def test_invalid_rule_treatment_rejected(self):
        with pytest.raises(ValueError):
            SatisfiabilityChecker([], rule_treatment="quantum")

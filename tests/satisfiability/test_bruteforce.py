"""Unit tests for the brute-force model enumerator, plus agreement
checks between the enumerator and the model-generation checker."""

import pytest

from repro.datalog.database import DeductiveDatabase
from repro.datalog.program import Program, Rule
from repro.logic.parser import parse_rule
from repro.satisfiability.bruteforce import (
    enumerate_models,
    find_finite_model,
    is_model,
)
from repro.satisfiability.checker import SatisfiabilityChecker


def constraints_from(*texts):
    db = DeductiveDatabase()
    for text in texts:
        db.add_constraint(text)
    return db.constraints


class TestEnumeration:
    def test_existential_minimum_model(self):
        model = find_finite_model(constraints_from("exists X: p(X)"))
        assert model is not None
        assert len(model) == 1

    def test_contradiction_has_no_model(self):
        model = find_finite_model(
            constraints_from("exists X: p(X)", "forall X: not p(X)"),
            max_domain_size=3,
        )
        assert model is None

    def test_implication_chain(self):
        model = find_finite_model(
            constraints_from(
                "exists X: a(X)",
                "forall X: a(X) -> b(X)",
            )
        )
        assert model is not None
        assert len(model.facts("b")) >= 1

    def test_rules_participate_as_clauses(self):
        program = Program([Rule.from_parsed(parse_rule("q(X) :- p(X)"))])
        model = find_finite_model(
            constraints_from("exists X: p(X)", "forall X: not q(X)"),
            program=program,
            max_domain_size=2,
        )
        assert model is None

    def test_enumerates_multiple_models(self):
        models = list(
            enumerate_models(
                constraints_from("exists X: p(X)"),
                max_domain_size=1,
                max_models=10,
            )
        )
        # Signature is {p/1}; domain {d1} gives exactly one model {p(d1)}.
        assert len(models) == 1

    def test_mentioned_constants_forced_into_domain(self):
        model = find_finite_model(
            constraints_from("p(a) or q(b)"), max_domain_size=1
        )
        assert model is not None


class TestCheckerAgreesWithBruteForce:
    CASES = [
        # (constraints, satisfiable within small domains)
        (("exists X: p(X)",), True),
        (("exists X: p(X)", "forall X: not p(X)"), False),
        (("forall X: p(X) -> q(X)",), True),
        (
            (
                "exists X: p(X)",
                "forall X: p(X) -> q(X)",
                "forall X: q(X) -> not p(X)",
            ),
            False,
        ),
        (
            (
                "exists X: p(X)",
                "forall X: p(X) -> exists Y: p(Y) and r(X, Y)",
            ),
            True,
        ),
        (
            (
                "exists X: a(X)",
                "forall X: a(X) -> b(X) or c(X)",
                "forall X: not b(X)",
                "forall X: not c(X)",
            ),
            False,
        ),
    ]

    @pytest.mark.parametrize("texts, expected_sat", CASES)
    def test_agreement(self, texts, expected_sat):
        constraints = constraints_from(*texts)
        brute = find_finite_model(constraints, max_domain_size=2)
        checker = SatisfiabilityChecker(list(texts))
        result = checker.check(max_fresh_constants=4)
        assert (brute is not None) is expected_sat
        assert result.satisfiable is expected_sat
        if result.satisfiable:
            assert is_model(result.model, checker.constraints)

"""Unit tests for constructive enforcement."""

from repro.logic.normalize import normalize_constraint
from repro.logic.parser import parse_fact, parse_formula
from repro.satisfiability.enforce import EnforcementContext, enforce
from repro.satisfiability.sample_db import SampleDatabase


def make_context(**kwargs):
    return EnforcementContext(SampleDatabase(), **kwargs)


def norm(text):
    return normalize_constraint(parse_formula(text))


class TestLiterals:
    def test_positive_literal_asserted(self):
        context = make_context()
        gen = enforce(context, norm("p(a)"), 0)
        next(gen)
        assert context.sample.holds(parse_fact("p(a)"))
        gen.close()

    def test_assertion_undone_after_exhaustion(self):
        context = make_context()
        list(enforce(context, norm("p(a)"), 0))
        assert not context.sample.holds(parse_fact("p(a)"))

    def test_already_true_is_noop(self):
        context = make_context()
        context.sample.assume(parse_fact("p(a)"), 0)
        paths = list(enforce(context, norm("p(a)"), 1))
        assert len(paths) == 1
        assert context.assertions == 0

    def test_negative_literal_unenforceable(self):
        context = make_context()
        context.sample.assume(parse_fact("p(a)"), 0)
        assert list(enforce(context, norm("not p(a)"), 1)) == []

    def test_negative_literal_already_true_succeeds(self):
        context = make_context()
        assert len(list(enforce(context, norm("not p(a)"), 0))) == 1

    def test_false_fails(self):
        context = make_context()
        from repro.logic.formulas import FALSE

        assert list(enforce(context, FALSE, 0)) == []


class TestConnectives:
    def test_conjunction_asserts_all(self):
        context = make_context()
        gen = enforce(context, norm("p(a) and q(b)"), 0)
        next(gen)
        assert context.sample.holds(parse_fact("p(a)"))
        assert context.sample.holds(parse_fact("q(b)"))
        gen.close()

    def test_disjunction_offers_alternatives(self):
        context = make_context()
        outcomes = []
        for _ in enforce(context, norm("p(a) or q(b)"), 0):
            outcomes.append(
                (
                    context.sample.holds(parse_fact("p(a)")),
                    context.sample.holds(parse_fact("q(b)")),
                )
            )
        assert outcomes == [(True, False), (False, True)]

    def test_disjunction_with_unenforceable_branch(self):
        context = make_context()
        context.sample.assume(parse_fact("p(a)"), 0)
        # not p(a) branch fails; q(a) branch succeeds.
        paths = list(enforce(context, norm("not p(a) or q(a)"), 1))
        assert len(paths) == 1


class TestQuantifiers:
    def test_universal_enforces_every_witness(self):
        context = make_context()
        context.sample.assume(parse_fact("p(a)"), 0)
        context.sample.assume(parse_fact("p(b)"), 0)
        gen = enforce(context, norm("forall X: p(X) -> q(X)"), 1)
        next(gen)
        assert context.sample.holds(parse_fact("q(a)"))
        assert context.sample.holds(parse_fact("q(b)"))
        gen.close()

    def test_universal_on_empty_restriction_succeeds(self):
        context = make_context()
        assert len(list(enforce(context, norm("forall X: p(X) -> q(X)"), 0))) == 1

    def test_existential_reuse_then_fresh(self):
        context = make_context()
        context.sample.assume(parse_fact("p(a)"), 0)
        outcomes = []
        for _ in enforce(context, norm("exists X: p(X) and q(X)"), 1):
            facts = {str(f) for f in context.sample.facts.match(
                parse_formula("q(_)").atom)}
            outcomes.append(facts)
        # First alternative reuses a; second invents a fresh constant.
        assert outcomes[0] == {"q(a)"}
        assert len(outcomes) == 2
        assert outcomes[1] != {"q(a)"}

    def test_existential_fresh_asserts_restriction_too(self):
        context = make_context()
        gen = enforce(context, norm("exists X: p(X) and q(X)"), 0)
        next(gen)  # no reuse possible: fresh branch
        assert len(context.sample.facts.facts("p")) == 1
        assert len(context.sample.facts.facts("q")) == 1
        gen.close()

    def test_fresh_constant_budget_prunes(self):
        context = make_context(max_fresh_constants=0)
        paths = list(enforce(context, norm("exists X: p(X)"), 0))
        assert paths == []
        assert context.budget_exhausted

    def test_budget_released_on_backtrack(self):
        context = make_context(max_fresh_constants=1)
        # Two sequential existentials: budget 1 forbids having both
        # fresh constants live at once, but enforcing one at a time,
        # backtracking in between, stays within budget.
        formula = norm("exists X: p(X)")
        for _ in enforce(context, formula, 0):
            pass
        assert context.fresh_constants_used == 0
        paths = list(enforce(context, formula, 0))
        assert len(paths) == 1  # budget was available again

    def test_no_reuse_mode_skips_reuse(self):
        context = make_context(existential_reuse=False)
        context.sample.assume(parse_fact("p(a)"), 0)
        outcomes = list(enforce(context, norm("exists X: p(X) and q(X)"), 1))
        # Only the fresh alternative exists.
        assert len(outcomes) == 1

    def test_nested_quantifiers(self):
        context = make_context()
        context.sample.assume(parse_fact("emp(a)"), 0)
        gen = enforce(
            context,
            norm("forall X: emp(X) -> exists Y: dept(Y) and member(X, Y)"),
            1,
        )
        next(gen)
        assert len(context.sample.facts.facts("dept")) == 1
        assert len(context.sample.facts.facts("member")) == 1
        gen.close()


class TestReservedNames:
    def test_fresh_constants_avoid_reserved(self):
        context = EnforcementContext(
            SampleDatabase(), reserved_names={"c1", "c2"}
        )
        constant = context.new_constant()
        assert constant.value == "c3"

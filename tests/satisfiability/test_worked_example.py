"""The Section 5 worked example, replayed end to end.

Rules:
    member(X, Y) <- leads(X, Y)
Constraints:
    (1) ∀X employee(X) → ∃Y department(Y) ∧ member(X, Y)
    (2) ∀X department(X) → ∃Y employee(Y) ∧ leads(Y, X)
    (3) ∀X,Y member(X, Y) → (∀Z leads(Z, Y) → subordinate(X, Z))
    (4) ∀X ¬subordinate(X, X)
    (5) ∃X employee(X)

The paper shows the set unsatisfiable: every way of leading the
department forced by constraints (1)+(2) makes its leader a member
(via the rule), hence a subordinate of themselves, contradicting (4).
Weakening (3) with a ``leads`` escape restores finite satisfiability.
"""


from repro.satisfiability.checker import (
    SatisfiabilityChecker,
    check_satisfiability,
)

SECTION5 = """
member(X, Y) :- leads(X, Y).

forall X: employee(X) -> exists Y: department(Y) and member(X, Y).
forall X: department(X) -> exists Y: employee(Y) and leads(Y, X).
forall X, Y: member(X, Y) -> (forall Z: leads(Z, Y) -> subordinate(X, Z)).
forall X: not subordinate(X, X).
exists X: employee(X).
"""

SECTION5_WEAKENED = """
member(X, Y) :- leads(X, Y).

forall X: employee(X) -> exists Y: department(Y) and member(X, Y).
forall X: department(X) -> exists Y: employee(Y) and leads(Y, X).
forall X, Y: member(X, Y) -> leads(X, Y) or
    (forall Z: leads(Z, Y) -> subordinate(X, Z)).
forall X: not subordinate(X, X).
exists X: employee(X).
"""


class TestSection5Unsatisfiable:
    def test_verdict(self):
        result = check_satisfiability(SECTION5, max_fresh_constants=6)
        assert result.unsatisfiable

    def test_backtracking_happened(self):
        # The paper's run explores two alternatives at level 2, both
        # ending in the subordinate(X, X) contradiction.
        checker = SatisfiabilityChecker.from_source(SECTION5, trace=True)
        result = checker.check(max_fresh_constants=6)
        assert result.unsatisfiable
        assert result.stats["backtracks"] > 0

    def test_trace_reaches_subordinate_contradiction(self):
        checker = SatisfiabilityChecker.from_source(SECTION5, trace=True)
        result = checker.check(max_fresh_constants=6)
        # Along some branch a subordinate fact was asserted (the
        # enforcement of (3)) before (4) refuted it.
        assert any("subordinate" in line for line in result.trace)

    def test_first_enforcement_is_employee(self):
        # Level 0: only constraint (5) is violated on the empty sample.
        checker = SatisfiabilityChecker.from_source(SECTION5, trace=True)
        result = checker.check(max_fresh_constants=6)
        asserts = [l for l in result.trace if l.startswith("assert")]
        assert asserts[0].startswith("assert employee(")


class TestSection5Weakened:
    def test_verdict(self):
        result = check_satisfiability(SECTION5_WEAKENED, max_fresh_constants=6)
        assert result.satisfiable

    def test_model_shape(self):
        result = check_satisfiability(SECTION5_WEAKENED, max_fresh_constants=6)
        model = result.model
        # Someone is employed, some department exists, someone leads it.
        assert len(model.facts("employee")) >= 1
        assert len(model.facts("department")) >= 1
        assert len(model.facts("leads")) >= 1
        # Nobody is their own subordinate.
        for fact in model.facts("subordinate"):
            assert fact.args[0] != fact.args[1]

    def test_model_satisfies_all_constraints(self):
        from repro.satisfiability.bruteforce import is_model

        checker = SatisfiabilityChecker.from_source(SECTION5_WEAKENED)
        result = checker.check(max_fresh_constants=6)
        assert is_model(result.model, checker.constraints)

"""The package's public surface: repro.open, repro.Database,
EngineConfig and the exported result types, as promised by __all__."""

import repro


class TestAll:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_surface_is_exported(self):
        for name in (
            "open",
            "Database",
            "EngineConfig",
            "Transaction",
            "Session",
            "CommitResult",
            "CheckResult",
            "SatResult",
            "Violation",
            "StoreBackend",
            "ResultCache",
            "BACKENDS",
        ):
            assert name in repro.__all__, name

    def test_database_is_the_managed_handle(self):
        assert repro.Database is repro.ManagedDatabase


class TestOpen:
    SOURCE = """
    leads(ann, sales).
    employee(ann).
    member(X, Y) :- leads(X, Y).
    forall X, Y: member(X, Y) -> employee(X).
    """

    def test_in_memory_round_trip(self):
        db = repro.open(source=self.SOURCE)
        assert db.query("member(ann, sales)") is True
        assert db.submit("leads(bob, hr)").status == "rejected"
        result = db.submit(["employee(bob)", "leads(bob, hr)"])
        assert result.status == "committed"
        assert db.holds("member(bob, hr)") is True

    def test_durable_round_trip(self, tmp_path):
        directory = tmp_path / "db"
        db = repro.open(directory, source=self.SOURCE)
        assert db.submit("employee(bob)").status == "committed"
        db.close()
        reopened = repro.open(directory)
        assert reopened.holds("employee(bob)") is True
        reopened.close()

    def test_config_threads_everywhere(self, tmp_path):
        config = repro.EngineConfig(
            strategy="magic", backend="sqlite", cache=True
        )
        db = repro.open(source=self.SOURCE, config=config)
        assert db.config is config
        assert db.manager.checker.config is config
        assert type(db.database.facts).__name__ == "SqliteFactStore"
        assert db.query("member(ann, sales)") is True
        assert db.stats()["backend"] == "sqlite"
        assert db.stats()["cache.entries"] >= 1

    def test_options_pass_through(self):
        db = repro.open(source=self.SOURCE, method="full", group_commit=False)
        assert db.manager.method == "full"
        assert db.manager.group_commit is False

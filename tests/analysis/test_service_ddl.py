"""Rule DDL admission end to end: the static analyzer is the first
gate, and a rejected rule must cost *nothing* — no integrity-gate
evaluation, no magic rewrite, no WAL record, no program change. Over
the wire, the diagnostics travel in the commit response.
"""

import pytest

import repro
from repro.obs.metrics import default_registry
from repro.service.client import DatabaseClient
from repro.service.server import DatabaseServer

SOURCE = """
employee(ann).
leads(ann, sales).
member(X, Y) :- leads(X, Y).
forall X, Y: member(X, Y) -> employee(X).
"""


@pytest.fixture
def db():
    return repro.open(source=SOURCE)


def _counter(snapshot, name):
    value = snapshot.get(name, 0)
    if isinstance(value, dict):
        return value.get("count", 0)
    return value


class TestRuleDDLAdmission:
    def test_clean_rule_commits_and_derives(self, db):
        result = db.add_rule("colleague(X) :- member(X, Y)")
        assert result.ok and result.lsn == 1
        assert result.check is not None and result.check.ok
        assert db.holds("colleague(ann)")
        assert len(db.database.program) == 2

    def test_unsafe_rule_rejected_before_any_evaluation(self, db):
        before = default_registry().snapshot()
        result = db.add_rule("bad(X, Y) :- member(X, Z)")
        after = default_registry().snapshot()

        assert result.status == "rejected"
        assert result.lsn is None and result.check is None
        assert [d.code for d in result.diagnostics] == ["R001"]
        assert "static analysis" in result.reason
        # Nothing downstream of the analyzer ran: the gate was never
        # invoked and no demand transformation was attempted.
        for name in ("gate.check_seconds", "magic.rewrites"):
            assert _counter(after, name) == _counter(before, name), name
        assert after["txn.ddl_rejected"] - before["txn.ddl_rejected"] == 1
        assert len(db.database.program) == 1

    def test_unstratifying_rule_rejected_with_cycle(self, db):
        db.add_rule("reports(X) :- member(X, Y)")
        result = db.add_rule(
            "leads(X, X) :- employee(X), not reports(X)"
        )
        assert result.status == "rejected"
        codes = [d.code for d in result.diagnostics]
        assert "R002" in codes
        (r002,) = [d for d in result.diagnostics if d.code == "R002"]
        assert "recursion through negation along" in r002.message

    def test_violating_rule_rejected_by_integrity_gate(self, db):
        db.submit("guest(zoe)")
        result = db.add_rule("member(X, lobby) :- guest(X)")
        assert result.status == "rejected"
        assert result.check is not None and not result.check.ok
        assert "integrity gate" in result.reason
        # It *passed* the static gate: no error diagnostics.
        assert not [d for d in result.diagnostics if d.severity == "error"]

    def test_fact_commits_never_invoke_the_analyzer(self, db):
        before = default_registry().snapshot()
        assert db.submit("employee(bob)").ok
        assert db.submit("not employee(bob)").ok
        after = default_registry().snapshot()
        assert after["analysis.runs"] == before["analysis.runs"]


class TestRuleDDLOverTheWire:
    @pytest.fixture
    def client(self, tmp_path):
        server = DatabaseServer(tmp_path / "root", port=0, sync=False).start()
        host, port = server.address
        with DatabaseClient(host, port) as connection:
            connection.open("hr", SOURCE)
            yield connection
        server.close()

    def test_unsafe_rule_returns_diagnostics_and_commits_nothing(
        self, client
    ):
        before = client.stats("hr")
        result = client.add_rule("hr", "bad(X, Y) :- member(X, Z)")
        assert result["status"] == "rejected"
        assert result["lsn"] is None
        (diag,) = result["diagnostics"]
        assert diag["code"] == "R001" and diag["severity"] == "error"
        assert "not range-restricted" in diag["message"]
        after = client.stats("hr")
        assert after["rules"] == before["rules"]
        assert after["lsn"] == before["lsn"]

    def test_clean_rule_commits_over_the_wire(self, client):
        result = client.add_rule("hr", "colleague(X) :- member(X, Y)")
        assert result["status"] == "committed"
        assert result["diagnostics"] == []
        assert client.holds("hr", "colleague(ann)")

    def test_lint_verb_reports_committed_program(self, client):
        report = client.lint("hr")
        assert report["errors"] == 0
        assert report["summary"] == {"errors": 0, "warnings": 0, "info": 0}

    def test_admitted_rule_is_durable(self, tmp_path):
        root = tmp_path / "root"
        server = DatabaseServer(root, port=0, sync=False).start()
        host, port = server.address
        with DatabaseClient(host, port) as connection:
            connection.open("hr", SOURCE)
            assert (
                connection.add_rule("hr", "colleague(X) :- member(X, Y)")[
                    "status"
                ]
                == "committed"
            )
        server.close()

        reopened = DatabaseServer(root, port=0, sync=False).start()
        host, port = reopened.address
        try:
            with DatabaseClient(host, port) as connection:
                info = connection.open("hr")
                assert info["rules"] == 2
                assert connection.holds("hr", "colleague(ann)")
        finally:
            reopened.close()

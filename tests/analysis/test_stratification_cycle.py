"""Regression: a StratificationError names the actual predicate cycle
through negation, not just the fact that one exists. The analyzer's
dependency-graph pass computes the path; the Program constructor
surfaces it, so every caller — library, CLI, service — sees the same
message.
"""

import pytest

import repro
from repro import StratificationError

UNSTRATIFIED = """
q(a).
p(X) :- q(X), not r(X).
r(X) :- q(X), p(X).
"""


class TestStratificationMessage:
    def test_error_pins_the_negative_cycle_path(self):
        with pytest.raises(StratificationError) as excinfo:
            repro.DeductiveDatabase.from_source(UNSTRATIFIED)
        message = str(excinfo.value)
        assert (
            "program is not stratified: recursion through negation "
            "along p -> r -> p" in message
        )

    def test_self_negation_names_one_step_cycle(self):
        with pytest.raises(StratificationError) as excinfo:
            repro.DeductiveDatabase.from_source(
                "q(a). p(X) :- q(X), not p(X)."
            )
        assert "along p -> p" in str(excinfo.value)

    def test_analyzer_reports_same_cycle_as_r002(self):
        report = repro.analyze(UNSTRATIFIED)
        assert report.codes() == ["R002"]
        (diag,) = report
        assert "p -> r -> p" in diag.message
        assert diag.details.get("cycle") == ["p", "r", "p"]

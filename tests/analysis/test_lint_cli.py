"""The ``repro lint`` verb: exit codes 0/1/2, ``--fail-on`` policy,
text and JSON formats, multi-file aggregation, and the coded one-liner
other verbs print when they trip over an unsafe program.
"""

import json

import pytest

from repro.cli import main

CLEAN = """
leads(ann, sales).
employee(ann).
member(X, Y) :- leads(X, Y).
forall X, Y: member(X, Y) -> employee(X).
"""

WARNING = "p(a). q(X) :- p(X), s(X).\n"  # W003: s never populated

ERROR = "p(a). q(X, Y) :- p(X).\n"  # R001: Y unbound


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, text in (
        ("clean", CLEAN),
        ("warning", WARNING),
        ("error", ERROR),
    ):
        path = tmp_path / f"{name}.dl"
        path.write_text(text)
        paths[name] = str(path)
    return paths


class TestLintExitCodes:
    def test_clean_exits_zero(self, files, capsys):
        assert main(["lint", files["clean"]]) == 0
        assert "clean: no diagnostics" in capsys.readouterr().out

    def test_warnings_exit_one(self, files, capsys):
        assert main(["lint", files["warning"]]) == 1
        assert "W003" in capsys.readouterr().out

    def test_errors_exit_two(self, files, capsys):
        assert main(["lint", files["error"]]) == 2
        assert "R001" in capsys.readouterr().out

    def test_fail_on_error_tolerates_warnings(self, files):
        assert main(["lint", files["warning"], "--fail-on", "error"]) == 0
        assert main(["lint", files["error"], "--fail-on", "error"]) == 2

    def test_worst_file_wins(self, files):
        code = main(
            ["lint", files["clean"], files["warning"], files["error"]]
        )
        assert code == 2

    def test_unreadable_file_is_an_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "missing.dl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestLintJson:
    def test_single_file_payload(self, files, capsys):
        main(["lint", files["error"], "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["path"] == files["error"]
        assert payload["summary"]["errors"] == 1
        (diag,) = payload["diagnostics"]
        assert diag["code"] == "R001"

    def test_multi_file_payload_aggregates(self, files, capsys):
        main(
            [
                "lint",
                files["clean"],
                files["warning"],
                files["error"],
                "--format",
                "json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["files"]) == 3
        assert payload["summary"] == {
            "errors": 1,
            "warnings": 1,
            "info": 0,
        }


class TestCodedMessagesAtOtherSurfaces:
    def test_check_on_unsafe_database_prints_code(self, tmp_path, capsys):
        path = tmp_path / "bad.dl"
        path.write_text(ERROR)
        code = main(["check", str(path), "--update", "p(b)"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error: R001:" in err
        assert "not range-restricted" in err

"""One fixture program per diagnostic code, each seeded with exactly
one defect: the analyzer must fire that code, only that code, and a
clean program must produce nothing. This is the catalog's contract —
the codes are stable API, and a fixture firing a second code means a
check has started overlapping another's territory.
"""

import pytest

import repro
from repro.analysis import CATALOG

# fmt: off
FIXTURES = {
    # -- errors --------------------------------------------------------
    "R000": "p(a",
    "R001": "p(a). q(X, Y) :- p(X).",
    "R002": "q(a). p(X) :- q(X), not r(X). r(X) :- q(X), p(X).",
    "R003": "p(a). p(X) -> q(X).",
    "R004": "p(a). forall X: p(X).",
    "R005": "p(a). p(a, b).",
    "R006": "p(a). q(b) and not q(b).",
    # -- warnings ------------------------------------------------------
    "W001": (
        "e(a, b). f(b). "
        "h(X) :- s(X, Y), t(Y). "
        "s(X, Y) :- e(X, Y), not t(Y). "
        "t(Y) :- f(Y)."
    ),
    "W002": "p(a). q(X) :- p(X). r(X) :- p(X). forall X: q(X) -> p(X).",
    "W003": "p(a). q(X) :- p(X), s(X).",
    "W004": "p(a). q(X) :- p(X). q(Y) :- p(Y).",
    "W005": "p(a). r(a, b). q(X) :- p(X). q(X) :- p(X), r(X, Y).",
    "W006": "p(a). q(b). r(X, Y) :- p(X), q(Y).",
    "W007": "p(a). p(a) or not p(a).",
    "W008": "p(a). p(b). q(X) :- p(X), p(c).",
    # -- info ----------------------------------------------------------
    "I001": (
        "e(a, b). e(b, c). e(c, a). bad(c). "
        "t(X) :- e(X, Y), e(Y, Z), e(Z, X), not bad(X)."
    ),
    "I002": "p(a). p(X) :- q(X). q(b).",
}
# fmt: on

CLEAN = {
    "quickstart": """
        leads(ann, sales).
        employee(ann).
        member(X, Y) :- leads(X, Y).
        forall X, Y: member(X, Y) -> employee(X).
    """,
    "recursion_with_negation": """
        edge(a, b). edge(b, c).
        node(a). node(b). node(c). node(d).
        reach(X, Y) :- edge(X, Y).
        reach(X, Y) :- edge(X, Z), reach(Z, Y).
        unreachable(X) :- node(X), not reached(X).
        reached(Y) :- reach(a, Y).
        forall X, Y: edge(X, Y) -> node(X).
        forall X: unreachable(X) -> node(X).
    """,
}


class TestFixturePrograms:
    @pytest.mark.parametrize("code", sorted(FIXTURES))
    def test_fixture_fires_exactly_its_code(self, code):
        report = repro.analyze(FIXTURES[code])
        assert report.codes() == [code], (
            f"{code} fixture produced {report.codes()}:\n{report.render()}"
        )

    @pytest.mark.parametrize("name", sorted(CLEAN))
    def test_clean_program_is_silent(self, name):
        report = repro.analyze(CLEAN[name])
        assert len(report) == 0, report.render()
        assert report.exit_code() == 0

    def test_every_catalog_code_has_a_fixture(self):
        assert set(FIXTURES) == set(CATALOG)

    @pytest.mark.parametrize("code", sorted(FIXTURES))
    def test_severity_matches_code_family(self, code):
        report = repro.analyze(FIXTURES[code])
        expected = {"R": "error", "W": "warning", "I": "info"}[code[0]]
        assert [d.severity for d in report] == [expected]

    def test_exit_codes_follow_worst_severity(self):
        assert repro.analyze(FIXTURES["R001"]).exit_code() == 2
        assert repro.analyze(FIXTURES["W004"]).exit_code() == 1
        assert repro.analyze(FIXTURES["I002"]).exit_code() == 0


class TestAnalyzeSurfaces:
    def test_database_analyze_matches_source_analyze(self):
        source = CLEAN["quickstart"]
        db = repro.DeductiveDatabase.from_source(source)
        assert db.analyze().codes() == repro.analyze(source).codes()

    def test_managed_database_analyze(self):
        db = repro.open(source=CLEAN["quickstart"])
        assert len(db.analyze()) == 0

    def test_analyze_rejects_other_types(self):
        with pytest.raises(TypeError):
            repro.analyze(42)

    def test_diagnostic_wire_shape(self):
        report = repro.analyze(FIXTURES["R001"])
        payload = report.to_dict()
        assert payload["summary"]["errors"] == 1
        (diag,) = payload["diagnostics"]
        assert diag["code"] == "R001"
        assert diag["severity"] == "error"
        assert "not range-restricted" in diag["message"]

    def test_analysis_counters_account_for_runs(self):
        from repro.obs.metrics import default_registry

        registry = default_registry()
        before = registry.snapshot()
        repro.analyze(CLEAN["quickstart"])
        repro.analyze(FIXTURES["R001"])
        repro.analyze(FIXTURES["W004"])
        after = registry.snapshot()
        assert after["analysis.runs"] - before["analysis.runs"] == 3
        assert after["analysis.errors"] - before["analysis.errors"] == 1
        assert after["analysis.warnings"] - before["analysis.warnings"] == 1

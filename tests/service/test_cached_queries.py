"""The service-layer result cache: shared across reads of the
committed state, bypassed by staged views, and invalidated *precisely*
— a commit touching predicate ``p`` evicts only ``p``-dependent
entries, leaves ``q``-dependent ones warm, and constraint DDL evicts
nothing. Pinned through the hit/miss/invalidation counters."""

import repro

SOURCE = """
p(a).
q(b).
dp(X) :- p(X).
dq(X) :- q(X).
"""

F_P = "exists X: dp(X)"
F_Q = "exists X: dq(X)"


def make_db():
    return repro.open(source=SOURCE, config=repro.EngineConfig(cache=True))


def stats(db):
    return db.manager.result_cache.stats()


class TestWarmHits:
    def test_repeated_query_hits(self):
        db = make_db()
        assert db.query(F_P) is True
        assert stats(db)["cache.misses"] >= 1
        before = stats(db)["cache.hits"]
        assert db.query(F_P) is True
        assert stats(db)["cache.hits"] == before + 1

    def test_repeated_holds_hits(self):
        db = make_db()
        assert db.holds("dp(a)") is True
        before = stats(db)["cache.hits"]
        assert db.holds("dp(a)") is True
        assert stats(db)["cache.hits"] == before + 1


class TestPreciseInvalidation:
    def test_commit_evicts_only_dependent_entries(self):
        db = make_db()
        db.query(F_P)
        db.query(F_Q)
        assert db.submit("p(c)").status == "committed"
        # The q-lineage entry survived the p-commit...
        before = stats(db)
        assert db.query(F_Q) is True
        after = stats(db)
        assert after["cache.hits"] == before["cache.hits"] + 1
        assert after["cache.misses"] == before["cache.misses"]
        # ...while the p-lineage entry was evicted and recomputes.
        before = stats(db)
        assert db.query(F_P) is True
        after = stats(db)
        assert after["cache.hits"] == before["cache.hits"]
        assert after["cache.misses"] == before["cache.misses"] + 1

    def test_commit_to_unrelated_predicate_leaves_cache_warm(self):
        db = make_db()
        db.query(F_P)
        db.holds("dp(a)")
        assert db.submit("r(z)").status == "committed"
        assert stats(db)["cache.invalidations"] == 0
        before = stats(db)["cache.hits"]
        assert db.query(F_P) is True
        assert db.holds("dp(a)") is True
        assert stats(db)["cache.hits"] == before + 2

    def test_holds_entries_are_atom_precise(self):
        db = make_db()
        db.holds("dp(a)")
        db.holds("dq(b)")
        # Inserting p(c) changes dp(c) — but the cached probes are for
        # dp(a)/dq(b), which did not change truth value: both stay warm.
        assert db.submit("p(c)").status == "committed"
        before = stats(db)["cache.hits"]
        assert db.holds("dp(a)") is True
        assert db.holds("dq(b)") is True
        assert stats(db)["cache.hits"] == before + 2
        # Deleting p(a) flips dp(a) itself: that probe is evicted (and
        # recomputes to False), dq(b) is still warm.
        assert db.submit("not p(a)").status == "committed"
        before = stats(db)
        assert db.holds("dp(a)") is False
        assert db.holds("dq(b)") is True
        after = stats(db)
        assert after["cache.misses"] == before["cache.misses"] + 1
        assert after["cache.hits"] == before["cache.hits"] + 1

    def test_formula_entries_are_predicate_precise(self):
        db = make_db()
        assert db.query("forall X: dp(X) -> p(X)") is True
        # Any change to the p lineage evicts the formula entry — even
        # an atom the formula's witnesses never touched.
        assert db.submit("p(zzz)").status == "committed"
        before = stats(db)["cache.misses"]
        assert db.query("forall X: dp(X) -> p(X)") is True
        # Evicted, so it recomputed (the evaluator may cache nested
        # subformulas as separate entries — at least one fresh miss).
        assert stats(db)["cache.misses"] > before
        # And the recomputed entry is warm again.
        hits = stats(db)["cache.hits"]
        assert db.query("forall X: dp(X) -> p(X)") is True
        assert stats(db)["cache.hits"] == hits + 1


class TestCacheBoundaries:
    def test_staged_reads_bypass_the_shared_cache(self):
        db = make_db()
        db.query(F_P)  # one warm entry
        session = db.begin()
        session.stage("q(staged)")
        before = stats(db)
        # Read-your-writes through the overlay: correct answer, and the
        # shared cache is neither consulted nor populated.
        assert session.holds("dq(staged)") is True
        assert session.query("exists X: dq(X)") is True
        assert stats(db) == before
        session.abort()

    def test_constraint_ddl_leaves_cache_warm(self):
        db = make_db()
        db.query(F_P)
        result = db.add_constraint("forall X: dp(X) -> p(X)")
        assert result.status == "committed"
        assert stats(db)["cache.invalidations"] == 0
        before = stats(db)["cache.hits"]
        assert db.query(F_P) is True
        assert stats(db)["cache.hits"] == before + 1

    def test_cache_off_by_default(self):
        db = repro.open(source=SOURCE)
        assert db.manager.result_cache is None
        assert db.query(F_P) is True  # reads still work, uncached

    def test_stats_endpoint_reports_cache(self):
        db = make_db()
        db.query(F_P)
        payload = db.stats()
        assert payload["cache.entries"] >= 1
        assert "cache.misses" in payload

"""Schema evolution end to end: all four triage verdicts
(:func:`assess_constraint_addition`) reachable through the CLI and
through the service layer — satellite coverage the library-level tests
in ``tests/integrity/test_evolution.py`` do not provide.
"""

import json

import pytest

from repro.cli import main
from repro.service.client import DatabaseClient
from repro.service.server import DatabaseServer

# Current database: ann works and leads; r-ordering constraints hold
# vacuously (no r facts); p(a) present with a nonemptiness constraint.
DB_SOURCE = """
employee(ann).
leads(ann, sales).
member(X, Y) :- leads(X, Y).
p(a).

forall X, Y: member(X, Y) -> employee(X).
exists X: p(X).
forall X: not r(X, X).
forall X, Y: r(X, Y) -> not r(Y, X).
forall [X, Y, Z]: r(X, Y) and r(Y, Z) -> r(X, Z).
"""

# Candidate constraints hitting each triage status.
ACCEPTED = "forall X, Y: leads(X, Y) -> member(X, Y)"
REPAIRABLE = "forall X: employee(X) -> exists Y: leads(X, Y) and dept(Y)"
INCOMPATIBLE = "forall X: not p(X)"
# Violated today, and the extended set only has infinite models within
# a 3-constant budget: the successor chain through irreflexive,
# antisymmetric, transitive r.
UNDECIDED = "forall X: p(X) -> exists Y: p(Y) and r(X, Y)"

STATUS_OF = {
    ACCEPTED: ("accepted", 0),
    REPAIRABLE: ("repairable", 3),
    INCOMPATIBLE: ("incompatible", 1),
    UNDECIDED: ("undecided", 2),
}


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.dl"
    path.write_text(DB_SOURCE)
    return str(path)


class TestEvolveCli:
    @pytest.mark.parametrize("candidate", list(STATUS_OF))
    def test_all_statuses_reachable_with_exit_codes(
        self, db_file, candidate, capsys
    ):
        status, exit_code = STATUS_OF[candidate]
        code = main(
            ["evolve", db_file, "--constraint", candidate, "--budget", "3"]
        )
        out = capsys.readouterr().out
        assert code == exit_code
        assert f"status: {status}" in out

    @pytest.mark.parametrize("candidate", list(STATUS_OF))
    def test_json_format(self, db_file, candidate, capsys):
        status, exit_code = STATUS_OF[candidate]
        code = main(
            [
                "evolve",
                db_file,
                "--constraint",
                candidate,
                "--budget",
                "3",
                "--format",
                "json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == exit_code
        assert payload["status"] == status
        if status in ("repairable", "incompatible", "undecided"):
            assert payload["witnesses"], "violated today => witnesses"
        if status == "repairable":
            assert payload["sample_model"] is not None
            assert payload["satisfiability"] == "satisfiable"
        if status == "incompatible":
            assert payload["satisfiability"] == "unsatisfiable"
        if status == "undecided":
            assert payload["satisfiability"] == "unknown"

    def test_witnesses_name_the_repair_targets(self, db_file, capsys):
        main(
            [
                "evolve",
                db_file,
                "--constraint",
                REPAIRABLE,
                "--format",
                "json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert {"X": "ann"} in payload["witnesses"]

    def test_custom_id_flows_through(self, db_file, capsys):
        main(
            [
                "evolve",
                db_file,
                "--constraint",
                ACCEPTED,
                "--id",
                "closure",
                "--format",
                "json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["constraint"]["id"] == "closure"

    def test_malformed_constraint_exits_two_with_error(self, db_file, capsys):
        code = main(["evolve", db_file, "--constraint", "forall X:"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestEvolveService:
    @pytest.fixture
    def client(self, tmp_path):
        server = DatabaseServer(tmp_path / "root", port=0, sync=False).start()
        host, port = server.address
        with DatabaseClient(host, port) as connection:
            connection.open("hr", DB_SOURCE)
            yield connection
        server.close()

    @pytest.mark.parametrize("candidate", list(STATUS_OF))
    def test_all_statuses_reachable_over_the_wire(self, client, candidate):
        status, _ = STATUS_OF[candidate]
        result = client.add_constraint("hr", candidate, budget=3)
        assert result["triage"]["status"] == status
        if status == "accepted":
            assert result["status"] == "committed"
            assert result["lsn"] is not None
        else:
            assert result["status"] == "rejected"
            assert result["lsn"] is None
            assert result["reason"] == f"constraint triage: {status}"

    def test_only_accepted_ddl_is_durable(self, tmp_path):
        root = tmp_path / "root"
        server = DatabaseServer(root, port=0, sync=False).start()
        host, port = server.address
        with DatabaseClient(host, port) as connection:
            connection.open("hr", DB_SOURCE)
            accepted = connection.add_constraint(
                "hr", ACCEPTED, constraint_id="closure"
            )
            assert accepted["status"] == "committed"
            rejected = connection.add_constraint("hr", INCOMPATIBLE, budget=3)
            assert rejected["status"] == "rejected"
            before = connection.stats("hr")["constraints"]
        server.close()

        reopened = DatabaseServer(root, port=0, sync=False).start()
        host, port = reopened.address
        try:
            with DatabaseClient(host, port) as connection:
                info = connection.open("hr")
                assert info["constraints"] == before
                # The accepted constraint still gates after recovery.
                session = connection.begin("hr")
                session.stage(["leads(bob, hr)", "employee(bob)"])
                assert session.commit()["status"] == "committed"
        finally:
            reopened.close()

    def test_accepted_constraint_gates_next_commit(self, client):
        result = client.add_constraint(
            "hr", "forall X, D: leads(X, D) -> dept_known(D)", budget=3
        )
        # Violated today (sales is not dept_known) => not accepted.
        assert result["triage"]["status"] == "repairable"
        # Repair first, then the constraint is accepted.
        session = client.begin("hr")
        session.stage(["dept_known(sales)"])
        assert session.commit()["status"] == "committed"
        result = client.add_constraint(
            "hr", "forall X, D: leads(X, D) -> dept_known(D)", budget=3
        )
        assert result["status"] == "committed"
        session = client.begin("hr")
        session.stage(["leads(ann, ops)"])
        assert session.commit()["status"] == "rejected"

"""Crash recovery: kill-during-commit, torn writes, replay, and the
acceptance invariants —

* restarting after a kill recovers exactly the last committed state
  (every acknowledged commit present; at most the one in-flight,
  durably-logged-but-unacknowledged transaction extra);
* the recovered DRed-maintained model equals a from-scratch
  recomputation of the canonical model;
* every logged transaction passed the integrity gate: the recovered
  state satisfies all constraints under a fresh full check, and
  violating transactions never appear in the WAL.

The deterministic tests inject torn writes at the WAL layer; the
subprocess tests SIGKILL a live writer mid-stream. Set
``REPRO_STRESS=1`` (the CI stress job does) for more kill iterations.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.datalog.bottomup import compute_model
from repro.service.database import ManagedDatabase

STRESS_ITERATIONS = 5 if os.environ.get("REPRO_STRESS") else 2

SOURCE = """
employee(seed).
leads(seed, sales).
member(X, Y) :- leads(X, Y).
forall X, Y: member(X, Y) -> employee(X).
"""


class SimulatedCrash(RuntimeError):
    pass


def assert_recovery_invariants(directory):
    """The acceptance criteria, checked on a recovered database."""
    db = ManagedDatabase(directory, sync=False)
    # DRed model == from-scratch recomputation.
    fresh = compute_model(db.database.facts, db.database.program)
    assert sorted(map(str, fresh)) == sorted(map(str, db.model.model))
    # Every committed transaction passed the gate: a fresh full check
    # of the recovered state finds nothing.
    assert db.database.violated_constraints() == []
    # And the gate agrees with a full re-check on the next transaction.
    verdict_bdm = db.check(["employee(probe)", "leads(probe, sales)"])
    verdict_full = db.check(
        ["employee(probe)", "leads(probe, sales)"], method="full"
    )
    assert verdict_bdm.ok == verdict_full.ok
    return db


class TestTornCommit:
    """Deterministic kill-during-commit: the WAL write dies halfway."""

    def crash_after(self, db, n_bytes):
        wal = db.manager.storage.wal
        original = wal._write_bytes

        def torn(data):
            original(data[:n_bytes])
            raise SimulatedCrash("power failed mid-append")

        wal._write_bytes = torn

    @pytest.mark.parametrize("torn_bytes", [0, 1, 10, 40])
    def test_torn_single_commit_rolls_back(self, tmp_path, torn_bytes):
        directory = tmp_path / "db"
        db = ManagedDatabase(directory, SOURCE, sync=False)
        assert db.submit(["employee(a)", "leads(a, sales)"]).ok
        self.crash_after(db, torn_bytes)
        with pytest.raises(SimulatedCrash):
            db.submit(["employee(b)", "leads(b, sales)"])
        db.close()
        recovered = assert_recovery_invariants(directory)
        # The acknowledged commit survived; the torn one is gone.
        assert recovered.lsn == 1
        assert recovered.holds("member(a, sales)")
        assert not recovered.holds("employee(b)")
        # And the store accepts new commits after recovery.
        assert recovered.submit(["employee(c)", "leads(c, sales)"]).ok
        assert recovered.lsn == 2

    def test_torn_group_commit_is_all_or_nothing(self, tmp_path):
        """A batch record torn mid-write must not resurrect a prefix of
        the batch: the gate verdict covered the whole group only."""
        import threading

        directory = tmp_path / "db"
        db = ManagedDatabase(directory, SOURCE, sync=False)
        manager = db.manager
        sessions = [db.begin() for _ in range(3)]
        for worker, session in enumerate(sessions):
            session.stage(
                [f"employee(g{worker})", f"leads(g{worker}, sales)"]
            )
        self.crash_after(db, 25)  # a few bytes of the batch record
        results = []

        def attempt(session):
            # The leader surfaces the crash; followers observe a
            # pipeline-error rejection.
            try:
                results.append(session.commit())
            except SimulatedCrash as error:
                results.append(error)

        manager._commit_mutex.acquire()
        try:
            threads = [
                threading.Thread(target=attempt, args=(s,))
                for s in sessions
            ]
            for thread in threads:
                thread.start()
            deadline = 200
            while len(manager._queue) < 3 and deadline:
                time.sleep(0.01)
                deadline -= 1
        finally:
            manager._commit_mutex.release()
        for thread in threads:
            thread.join(timeout=10)
        db.close()
        assert len(results) == 3
        assert not any(
            isinstance(r, object)
            and getattr(r, "status", None) == "committed"
            for r in results
        )
        recovered = assert_recovery_invariants(directory)
        assert recovered.lsn == 0
        for worker in range(3):
            assert not recovered.holds(f"employee(g{worker})")


@pytest.mark.parametrize("iteration", range(STRESS_ITERATIONS))
class TestKillDuringCommit:
    """SIGKILL a live writer process, then recover and verify."""

    def run_victim(self, directory, kill_after_lines, seed):
        victim = subprocess.Popen(
            [
                sys.executable,
                os.path.join(os.path.dirname(__file__), "_crash_writer.py"),
                str(directory),
                "60",
                str(seed),
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        acked = []
        try:
            for line in victim.stdout:
                if line.startswith("COMMITTED"):
                    _, lsn, name = line.split()
                    acked.append((int(lsn), name))
                if len(acked) >= kill_after_lines:
                    os.kill(victim.pid, signal.SIGKILL)
                    break
            victim.wait(timeout=30)
        finally:
            victim.stdout.close()
            if victim.poll() is None:  # pragma: no cover - safety net
                victim.kill()
                victim.wait()
        return acked

    def test_kill_replay_verify(self, tmp_path, iteration):
        directory = tmp_path / "db"
        acked = self.run_victim(directory, 4 + 3 * iteration, iteration)
        assert acked, "victim never acknowledged a commit"
        recovered = assert_recovery_invariants(directory)
        # Exactly the last committed state: every acknowledged commit
        # is present...
        for lsn, name in acked:
            assert recovered.holds(f"member({name}, sales)"), (lsn, name)
        # ...and the recovered LSN is at least the last acked one (the
        # kill may have caught one logged-but-unacknowledged commit,
        # which is a committed transaction too: it passed the gate and
        # reached the durable log).
        last_acked = acked[-1][0]
        assert recovered.lsn >= last_acked
        assert recovered.lsn <= last_acked + 2
        # No ghost (rejected) fact was ever logged or recovered.
        assert not any(
            "ghost" in fact for fact in map(str, recovered.database.facts)
        )
        wal_path = os.path.join(directory, "wal.log")
        if os.path.exists(wal_path):
            with open(wal_path, "rb") as handle:
                assert b"ghost" not in handle.read()

    def test_recovered_store_keeps_working(self, tmp_path, iteration):
        directory = tmp_path / "db"
        self.run_victim(directory, 3, 100 + iteration)
        recovered = ManagedDatabase(directory, sync=False)
        before = recovered.lsn
        assert recovered.submit(
            ["employee(resumed)", "leads(resumed, sales)"]
        ).ok
        assert recovered.lsn == before + 1
        recovered.close()
        assert_recovery_invariants(directory)


class TestRecoveryMatchesFullCheckVerdicts:
    """Recovered-state gate verdicts agree with fresh full checks,
    accepting and rejecting alike."""

    def test_verdict_agreement_after_recovery(self, tmp_path):
        directory = tmp_path / "db"
        db = ManagedDatabase(directory, SOURCE, sync=False)
        for i in range(5):
            assert db.submit(
                [f"employee(e{i})", f"leads(e{i}, sales)"]
            ).ok
        db.close()
        recovered = ManagedDatabase(directory, sync=False)
        good = ["employee(new)", "leads(new, sales)"]
        bad = ["leads(stranger, hr)"]
        for updates in (good, bad):
            bdm = recovered.check(updates)
            full = recovered.check(updates, method="full")
            assert bdm.ok == full.ok
            assert bdm.violated_constraint_ids() == (
                full.violated_constraint_ids()
            )

"""Sessions + transaction manager: isolation, OCC, the integrity gate,
group commit and durability wiring — all through :class:`ManagedDatabase`.
"""

import threading

import pytest

from repro.datalog.bottomup import compute_model
from repro.service.database import ManagedDatabase
from repro.service.transactions import SessionError

SOURCE = """
employee(ann).
leads(ann, sales).
member(X, Y) :- leads(X, Y).
forall X, Y: member(X, Y) -> employee(X).
"""


@pytest.fixture
def db():
    return ManagedDatabase(source=SOURCE)  # in-memory


def model_facts(db):
    return sorted(map(str, db.model.model))


class TestSessionLifecycle:
    def test_stage_commit_applies(self, db):
        session = db.begin()
        session.stage(["employee(bob)", "leads(bob, sales)"])
        result = session.commit()
        assert result.ok and result.lsn == 1
        assert session.state == "committed"
        assert db.holds("member(bob, sales)")

    def test_reads_see_staged_but_others_do_not(self, db):
        session = db.begin()
        session.insert("leads(bob, sales)")
        session.insert("employee(bob)")
        assert session.query("member(bob, sales)")
        assert not db.query("member(bob, sales)")
        other = db.begin()
        assert not other.query("member(bob, sales)")

    def test_delete_staging(self, db):
        session = db.begin()
        session.delete("leads(ann, sales)")
        assert not session.query("member(ann, sales)")
        assert session.commit().ok
        assert not db.query("member(ann, sales)")

    def test_abort_discards(self, db):
        session = db.begin()
        session.insert("employee(bob)")
        session.abort()
        assert session.state == "aborted"
        assert not db.holds("employee(bob)")
        with pytest.raises(SessionError):
            session.stage("employee(carol)")

    def test_closed_session_rejects_commit(self, db):
        session = db.begin()
        session.insert("employee(bob)")
        assert session.commit().ok
        with pytest.raises(SessionError):
            session.commit()

    def test_empty_commit_is_trivial(self, db):
        session = db.begin()
        result = session.commit()
        assert result.ok and result.reason == "empty transaction"
        assert db.lsn == 0

    def test_net_noop_commit_is_trivial(self, db):
        """Insert-then-delete nets to a delete of an absent fact — a
        Definition-1 no-op; it commits without a log record or LSN."""
        session = db.begin()
        session.insert("employee(bob)")
        session.delete("employee(bob)")
        result = session.commit()
        assert result.ok and result.reason == "no-op transaction"
        assert db.lsn == 0
        assert db.stats()["txn.noop_commits"] == 1

    def test_insert_of_existing_fact_is_noop(self, db):
        session = db.begin()
        session.insert("employee(ann)")
        result = session.commit()
        assert result.ok and result.reason == "no-op transaction"
        assert db.lsn == 0

    def test_noops_are_stripped_from_logged_transactions(self, db):
        session = db.begin()
        session.stage(["employee(ann)", "employee(bob)"])  # ann exists
        result = session.commit()
        assert result.ok and result.lsn == 1
        entry = db.manager._commit_log[-1]
        assert sorted(map(str, entry.write_keys)) == ["employee(bob)"]


class TestIntegrityGate:
    def test_violating_commit_rejected_with_witness(self, db):
        session = db.begin()
        session.insert("leads(eve, hr)")
        result = session.commit()
        assert result.status == "rejected"
        assert not result.ok
        violation = result.check.violations[0]
        assert violation.constraint_id == "c1"
        assert str(violation.trigger) == "member(eve, hr)"
        assert session.state == "aborted"
        assert not db.holds("leads(eve, hr)")
        assert db.lsn == 0

    def test_gate_honors_method_knob(self):
        db = ManagedDatabase(source=SOURCE, method="full")
        session = db.begin()
        session.insert("leads(eve, hr)")
        result = session.commit()
        assert result.status == "rejected"
        assert result.check.method == "full"

    def test_dry_run_check(self, db):
        session = db.begin()
        session.insert("leads(eve, hr)")
        verdict = session.check()
        assert not verdict.ok
        assert session.state == "open"  # dry run does not close
        session.insert("employee(eve)")
        assert session.check().ok
        assert session.commit().ok

    def test_transaction_screening_cures_violation(self, db):
        """The gate sees the transaction's *net* effect, so a curing
        update inside the same transaction admits it."""
        session = db.begin()
        session.stage(["leads(bob, hr)", "employee(bob)"])
        assert session.commit().ok


class TestConflicts:
    def test_write_write_conflict(self, db):
        first, second = db.begin(), db.begin()
        first.insert("employee(bob)")
        second.insert("employee(bob)")
        assert first.commit().ok
        result = second.commit()
        assert result.status == "conflict"
        assert "write-write" in result.reason
        assert second.state == "aborted"

    def test_read_write_conflict_via_dependency_closure(self, db):
        """Reading a *derived* predicate conflicts with writes to its
        extensional support — the dependency-closure expansion."""
        reader = db.begin()
        reader.query("member(ann, sales)")  # member depends on leads
        writer = db.begin()
        writer.stage(["leads(bob, ops)", "employee(bob)"])
        assert writer.commit().ok
        reader.insert("employee(zed)")
        result = reader.commit()
        assert result.status == "conflict"
        assert "leads" in result.reason

    def test_disjoint_writers_do_not_conflict(self, db):
        first, second = db.begin(), db.begin()
        first.insert("employee(bob)")
        second.insert("employee(carol)")
        assert first.commit().ok
        assert second.commit().ok

    def test_read_of_unwritten_predicate_is_fine(self, db):
        """Predicate granularity: only predicates the session actually
        read (or their support) can conflict."""
        reader = db.begin()
        reader.holds("band(pop)")  # nobody writes band
        writer = db.begin()
        writer.stage(["leads(bob, ops)", "employee(bob)"])
        assert writer.commit().ok
        reader.insert("band(rock)")
        assert reader.commit().ok

    def test_same_predicate_read_conflicts_at_predicate_granularity(
        self, db
    ):
        """Reading a predicate a concurrent commit wrote is a conflict
        even for different keys — reads are tracked per predicate."""
        reader = db.begin()
        reader.holds("employee(ann)")
        writer = db.begin()
        writer.insert("employee(bob)")
        assert writer.commit().ok
        reader.insert("band(x)")
        assert reader.commit().status == "conflict"


class TestConcurrency:
    @pytest.mark.parametrize("group_commit", [True, False])
    def test_thread_pool_of_disjoint_writers(self, group_commit):
        db = ManagedDatabase(source=SOURCE, group_commit=group_commit)
        outcomes = []
        errors = []

        def writer(worker):
            try:
                for step in range(4):
                    session = db.begin()
                    session.insert(f"employee(w{worker}_{step})")
                    outcomes.append(session.commit().status)
            except Exception as error:  # pragma: no cover - fail loud
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert outcomes.count("committed") == 24
        assert db.lsn == 24
        stats = db.stats()
        assert stats["txn.commits"] == 24

    def test_concurrent_conflicting_writers_one_wins(self):
        """Sessions that all began before any commit and write the same
        key: first committer wins, the rest conflict."""
        db = ManagedDatabase(source=SOURCE)
        sessions = [db.begin() for _ in range(4)]
        for session in sessions:
            session.insert("employee(shared)")
        outcomes = []
        threads = [
            threading.Thread(
                target=lambda s=s: outcomes.append(s.commit().status)
            )
            for s in sessions
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(outcomes) == ["committed", "conflict", "conflict", "conflict"]

    def test_group_commit_batches_queued_writers(self):
        """Deterministic batching: while a leader slot is blocked, the
        queue fills; the next leader merges all waiting transactions
        into one gate check and one atomic batch record."""
        db = ManagedDatabase(source=SOURCE)
        manager = db.manager
        sessions = [db.begin() for _ in range(4)]
        for worker, session in enumerate(sessions):
            session.insert(f"employee(b{worker})")
        manager._commit_mutex.acquire()  # stall the pipeline
        try:
            threads = [
                threading.Thread(target=session.commit)
                for session in sessions
            ]
            for thread in threads:
                thread.start()
            deadline = 100
            while len(manager._queue) < 4 and deadline:
                threading.Event().wait(0.01)
                deadline -= 1
            assert len(manager._queue) == 4
        finally:
            manager._commit_mutex.release()
        for thread in threads:
            thread.join()
        stats = db.stats()
        assert stats["txn.commits"] == 4
        assert stats["txn.merged_gate_checks"] == 1
        assert stats["txn.fallback_gate_checks"] == 0
        assert db.lsn == 4
        for worker in range(4):
            assert db.holds(f"employee(b{worker})")


class TestBatchScopedGate:
    """The documented group-commit semantics: the admitted unit is the
    merged batch. Mutually *curing* transactions commit together (as
    if submitted as one transaction) while serialized commits reject
    the first of the pair."""

    CURE_SOURCE = """
    p(a).
    q(a).
    forall X: p(X) -> q(X).
    forall X: q(X) -> p(X).
    """

    def batch_of(self, db, staged_lists):
        from repro.service.transactions import _CommitRequest

        requests = []
        for staged in staged_lists:
            session = db.begin()
            session.stage(staged)
            requests.append(
                _CommitRequest(
                    "txn", session=session, transaction=session.transaction()
                )
            )
        with db.manager._commit_mutex:
            db.manager._process_batch(requests)
        return [r.result for r in requests]

    def test_curing_pair_admitted_as_one_batch(self):
        db = ManagedDatabase(source=self.CURE_SOURCE)
        results = self.batch_of(db, [["p(b)"], ["q(b)"]])
        assert [r.status for r in results] == ["committed", "committed"]
        assert db.holds("p(b)") and db.holds("q(b)")
        assert db.database.violated_constraints() == []
        # Logged atomically: both underneath one batch gate check.
        assert db.stats()["txn.merged_gate_checks"] == 1

    def test_serialized_commits_reject_the_first_of_the_pair(self):
        db = ManagedDatabase(source=self.CURE_SOURCE, group_commit=False)
        first = db.begin()
        first.stage(["p(b)"])
        assert first.commit().status == "rejected"
        second = db.begin()
        second.stage(["q(b)"])
        assert second.commit().status == "rejected"
        assert db.database.violated_constraints() == []


class TestGroupCommitFallback:
    def test_merged_batch_with_violator_rejects_exactly_the_violator(self):
        """Force a batch where one member violates: the merged gate
        fails, the fallback isolates the culprit."""
        db = ManagedDatabase(source=SOURCE)
        manager = db.manager
        good = db.begin()
        good.insert("employee(bob)")
        bad = db.begin()
        bad.insert("leads(eve, hr)")  # violates c1 (eve not employee)
        good2 = db.begin()
        good2.insert("employee(carol)")

        from repro.service.transactions import _CommitRequest

        requests = [
            _CommitRequest("txn", session=s, transaction=s.transaction())
            for s in (good, bad, good2)
        ]
        with manager._commit_mutex:
            manager._process_batch(requests)
        statuses = [r.result.status for r in requests]
        assert statuses == ["committed", "rejected", "committed"]
        assert requests[1].result.check.violations
        assert db.holds("employee(bob)") and db.holds("employee(carol)")
        assert not db.holds("leads(eve, hr)")
        assert db.stats()["txn.fallback_gate_checks"] == 3


class TestDurability:
    def test_commits_survive_reopen(self, tmp_path):
        db = ManagedDatabase(tmp_path / "hr", SOURCE, sync=False)
        session = db.begin()
        session.stage(["employee(bob)", "leads(bob, sales)"])
        assert session.commit().ok
        db.close()
        reopened = ManagedDatabase(tmp_path / "hr", sync=False)
        assert reopened.lsn == 1
        assert reopened.holds("member(bob, sales)")
        fresh = compute_model(
            reopened.database.facts, reopened.database.program
        )
        assert sorted(map(str, fresh)) == model_facts(reopened)

    def test_rejected_commits_never_reach_the_log(self, tmp_path):
        db = ManagedDatabase(tmp_path / "hr", SOURCE, sync=False)
        session = db.begin()
        session.insert("leads(eve, hr)")
        assert session.commit().status == "rejected"
        wal_path = tmp_path / "hr" / "wal.log"
        wal_text = wal_path.read_text() if wal_path.exists() else ""
        assert "eve" not in wal_text
        reopened = ManagedDatabase(tmp_path / "hr", sync=False)
        assert reopened.lsn == 0
        assert reopened.database.violated_constraints() == []

    def test_snapshot_interval_checkpoints(self, tmp_path):
        db = ManagedDatabase(
            tmp_path / "hr", SOURCE, sync=False, snapshot_interval=3
        )
        for i in range(7):
            assert db.submit(f"employee(s{i})").ok
        assert db.stats()["txn.checkpoints"] >= 2
        reopened = ManagedDatabase(tmp_path / "hr", sync=False)
        assert reopened.lsn == 7
        # Recovery replayed only the post-snapshot suffix.
        assert reopened.recovered.replayed_transactions <= 3

    def test_initial_violating_database_refused(self, tmp_path):
        bad = "leads(ghost, hr).\nmember(X, Y) :- leads(X, Y).\n" + (
            "forall X, Y: member(X, Y) -> employee(X).\n"
        )
        with pytest.raises(ValueError, match="consistent"):
            ManagedDatabase(tmp_path / "bad", bad, sync=False)


class TestConstraintDDL:
    def test_accepted_constraint_commits_and_gates(self, db):
        result = db.add_constraint("forall X, D: leads(X, D) -> employee(X)")
        assert result.ok and result.triage.status == "accepted"
        # The fresh constraint participates in the gate immediately.
        session = db.begin()
        session.insert("leads(ghost, hr)")
        rejected = session.commit()
        assert rejected.status == "rejected"

    def test_repairable_constraint_rejected_with_witnesses(self, db):
        db.submit("employee(solo)")
        result = db.add_constraint(
            "forall X: employee(X) -> exists Y: leads(X, Y)"
        )
        assert result.status == "rejected"
        assert result.triage.status == "repairable"
        assert result.triage.witnesses
        assert result.triage.sample_model is not None

    def test_incompatible_constraint_rejected(self, db):
        db.add_constraint("exists X: employee(X)")
        result = db.add_constraint("forall X: not employee(X)")
        assert result.status == "rejected"
        assert result.triage.status == "incompatible"

    def test_ddl_survives_reopen(self, tmp_path):
        db = ManagedDatabase(tmp_path / "hr", SOURCE, sync=False)
        assert db.add_constraint(
            "forall X, D: leads(X, D) -> employee(X)", constraint_id="cx"
        ).ok
        db.close()
        reopened = ManagedDatabase(tmp_path / "hr", sync=False)
        assert "cx" in [c.id for c in reopened.database.constraints]
        session = reopened.begin()
        session.insert("leads(ghost, hr)")
        assert session.commit().status == "rejected"

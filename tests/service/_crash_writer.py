"""Crash-test victim: commits transactions until killed.

Usage: ``python _crash_writer.py DIRECTORY N_TRANSACTIONS [SEED]``

Opens (or creates) a managed database in DIRECTORY and commits small
transactions in a loop, printing ``COMMITTED <lsn> <name>`` after each
acknowledged commit (flushed, so the parent can SIGKILL at a known
point). Every few commits it attempts a violating transaction, which
must be rejected — the parent later verifies no violating fact was
ever logged. Exits 0 if it finishes all transactions unkilled.
"""

import random
import sys

sys.path.insert(0, sys.argv[0].rsplit("/tests/", 1)[0] + "/src")

from repro.service.database import ManagedDatabase  # noqa: E402

SOURCE = """
employee(seed).
leads(seed, sales).
member(X, Y) :- leads(X, Y).
forall X, Y: member(X, Y) -> employee(X).
"""


def main() -> int:
    directory = sys.argv[1]
    n_transactions = int(sys.argv[2])
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 0
    rng = random.Random(seed)
    db = ManagedDatabase(
        directory, SOURCE, sync=True, snapshot_interval=7
    )
    for step in range(n_transactions):
        name = f"w{seed}_{step}"
        session = db.begin()
        session.stage([f"employee({name})", f"leads({name}, sales)"])
        result = session.commit()
        assert result.ok, result
        print(f"COMMITTED {result.lsn} {name}", flush=True)
        if rng.random() < 0.3:
            bad = db.begin()
            bad.stage([f"leads(ghost{step}, hr)"])
            rejected = bad.commit()
            assert rejected.status == "rejected", rejected
            print(f"REJECTED ghost{step}", flush=True)
    db.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())

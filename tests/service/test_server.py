"""The socket front end: protocol, concurrent clients, error paths."""

import json
import os
import socket
import threading
import time

import pytest

from repro.service.client import DatabaseClient, RemoteSession, ServiceError
from repro.service.server import DatabaseServer

SOURCE = """
employee(ann).
leads(ann, sales).
member(X, Y) :- leads(X, Y).
forall X, Y: member(X, Y) -> employee(X).
"""


@pytest.fixture
def server(tmp_path):
    instance = DatabaseServer(tmp_path / "root", port=0, sync=False).start()
    yield instance
    instance.close()


@pytest.fixture
def client(server):
    host, port = server.address
    with DatabaseClient(host, port) as connection:
        connection.open("hr", SOURCE)
        yield connection


class TestProtocolBasics:
    def test_ping(self, client):
        assert client.ping()

    def test_open_reports_state(self, client):
        info = client.open("hr")
        assert info["facts"] == 2 and info["constraints"] == 1
        assert client.databases() == ["hr"]

    def test_request_id_echoed(self, server):
        host, port = server.address
        with socket.create_connection((host, port)) as sock:
            handle = sock.makefile("rwb")
            handle.write(b'{"op": "ping", "id": 42}\n')
            handle.flush()
            response = json.loads(handle.readline())
        assert response == {"ok": True, "pong": True, "id": 42}

    def test_malformed_json_is_an_error_response(self, server):
        host, port = server.address
        with socket.create_connection((host, port)) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"this is not json\n")
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is False
            # The connection survives the bad line.
            handle.write(b'{"op": "ping"}\n')
            handle.flush()
            assert json.loads(handle.readline())["ok"] is True

    def test_unknown_op_and_unknown_session(self, client):
        with pytest.raises(ServiceError, match="unknown op"):
            client.call("bogus")
        with pytest.raises(ServiceError, match="unknown session"):
            client.call("commit", session="nope")

    def test_bad_database_name_rejected(self, client):
        with pytest.raises(ServiceError, match="bad database name"):
            client.open("../escape")


class TestTransactionsOverTheWire:
    def test_stage_query_commit(self, client):
        session = client.begin("hr")
        assert session.stage(["employee(bob)", "leads(bob, sales)"]) == 2
        assert session.query("member(bob, sales)") is True
        assert client.query("hr", "member(bob, sales)") is False
        verdict = session.check()
        assert verdict["ok"] is True
        result = session.commit()
        assert result["status"] == "committed" and result["lsn"] == 1
        assert client.query("hr", "member(bob, sales)") is True
        assert client.holds("hr", "employee(bob)") is True

    def test_rejection_carries_witnesses(self, client):
        session = client.begin("hr")
        session.stage("leads(eve, hr)")
        result = session.commit()
        assert result["status"] == "rejected"
        violation = result["check"]["violations"][0]
        assert violation == {
            "constraint": "c1",
            "instance": "employee(eve)",
            "trigger": "member(eve, hr)",
        }

    def test_abort_discards(self, client):
        session = client.begin("hr")
        session.insert("employee(bob)")
        session.abort()
        assert client.holds("hr", "employee(bob)") is False

    def test_disconnect_aborts_open_sessions(self, server):
        host, port = server.address
        first = DatabaseClient(host, port)
        first.open("hr", SOURCE)
        session = first.begin("hr")
        session.insert("employee(bob)")
        token = session.token
        first.close()
        # The dying handler thread runs the abort asynchronously; wait
        # for it so the assertion below is race-free.
        deadline = time.monotonic() + 5.0
        while token in server._sessions and time.monotonic() < deadline:
            time.sleep(0.01)
        assert token not in server._sessions
        with DatabaseClient(host, port) as second:
            with pytest.raises(ServiceError, match="unknown session"):
                second.call("commit", session=token)
            assert second.holds("hr", "employee(bob)") is False

    def test_commit_and_abort_release_session_registry(self, client, server):
        """Finished sessions are dropped eagerly, not only at
        connection close — long-lived connections must not leak."""
        for _ in range(3):
            session = client.begin("hr")
            session.stage(["employee(tmp)"])
            session.abort()
            session = client.begin("hr")
            session.stage(["band(pop)"])
            session.commit()
        assert server._sessions == {}

    def test_non_open_ops_do_not_create_databases(self, client, server):
        """A typo'd name errors instead of materializing a junk
        database directory; only ``open`` creates."""
        with pytest.raises(ServiceError, match="unknown database"):
            client.stats("hrr")  # typo for "hr"
        with pytest.raises(ServiceError, match="unknown database"):
            client.call("begin", db="hrr")
        assert not os.path.isdir(os.path.join(server.root, "hrr"))
        assert client.databases() == ["hr"]

    def test_failed_open_leaves_no_database_behind(self, client, server):
        """A bad seed (malformed source / inconsistent constraints)
        must not materialize a durable directory the name would then
        silently resolve to."""
        with pytest.raises(ServiceError):
            client.open("broken", "this is : not parseable ((")
        with pytest.raises(ServiceError):
            client.open(
                "inconsistent",
                "p(a).\nforall X: not p(X).\n",
            )
        for name in ("broken", "inconsistent"):
            with pytest.raises(ServiceError, match="unknown database"):
                client.stats(name)
            assert not os.path.isdir(os.path.join(server.root, name))
        assert client.databases() == ["hr"]

    def test_existing_on_disk_database_resolves_without_open(self, tmp_path):
        """After a restart, ops may address databases initialized on
        disk in a previous run without an explicit re-open."""
        root = tmp_path / "r"
        first = DatabaseServer(root, port=0, sync=False).start()
        host, port = first.address
        with DatabaseClient(host, port) as connection:
            connection.open("hr", SOURCE)
        first.close()
        second = DatabaseServer(root, port=0, sync=False).start()
        host, port = second.address
        try:
            with DatabaseClient(host, port) as connection:
                assert connection.holds("hr", "employee(ann)") is True
        finally:
            second.close()

    def test_conflict_over_the_wire(self, client):
        first = client.begin("hr")
        second = client.begin("hr")
        first.insert("employee(bob)")
        second.insert("employee(bob)")
        assert first.commit()["status"] == "committed"
        assert second.commit()["status"] == "conflict"

    def test_model_endpoint_includes_derived(self, client):
        facts = client.model("hr")
        assert "member(ann, sales)" in facts
        assert "leads(ann, sales)" in facts


class TestConcurrentClients:
    def test_disjoint_writers_from_many_connections(self, server):
        host, port = server.address
        with DatabaseClient(host, port) as setup:
            setup.open("hr", SOURCE)
        outcomes = []
        errors = []

        def worker(worker_id):
            try:
                with DatabaseClient(host, port) as connection:
                    for step in range(3):
                        session = connection.begin("hr")
                        session.stage([f"employee(u{worker_id}_{step})"])
                        outcomes.append(session.commit()["status"])
            except Exception as error:  # pragma: no cover - fail loud
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(5)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert outcomes.count("committed") == 15
        with DatabaseClient(host, port) as check:
            assert check.stats("hr")["lsn"] == 15


class TestDurabilityOverTheWire:
    def test_state_survives_server_restart(self, tmp_path):
        root = tmp_path / "root"
        server = DatabaseServer(root, port=0, sync=False).start()
        host, port = server.address
        with DatabaseClient(host, port) as connection:
            connection.open("hr", SOURCE)
            session = connection.begin("hr")
            session.stage(["employee(bob)", "leads(bob, sales)"])
            assert session.commit()["status"] == "committed"
            connection.checkpoint("hr")
        server.close()

        reopened = DatabaseServer(root, port=0, sync=False).start()
        host, port = reopened.address
        try:
            with DatabaseClient(host, port) as connection:
                info = connection.open("hr")
                assert info["lsn"] == 1
                assert connection.query("hr", "member(bob, sales)") is True
        finally:
            reopened.close()


class TestRemoteSessionParity:
    def test_remote_session_type(self, client):
        session = client.begin("hr")
        assert isinstance(session, RemoteSession)
        session.delete("leads(ann, sales)")
        assert session.holds("member(ann, sales)") is False
        assert session.commit()["status"] == "committed"

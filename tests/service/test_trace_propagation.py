"""Wire trace propagation across the service edge, and the health
sidecar under injected storage failure and concurrent scraping."""

import json
import logging
import threading
import urllib.error
import urllib.request

import pytest

from repro.config import EngineConfig
from repro.service.client import DatabaseClient, ServiceError
from repro.service.server import DatabaseServer

SOURCE = """
employee(ann).
leads(ann, sales).
member(X, Y) :- leads(X, Y).
forall X, Y: member(X, Y) -> employee(X).
"""


def _get(url: str):
    """(status, body bytes) — treating HTTP errors as responses."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture
def server(tmp_path):
    instance = DatabaseServer(
        tmp_path / "root", port=0, sync=False, metrics_port=0
    ).start()
    yield instance
    instance.close()


@pytest.fixture
def client(server):
    host, port = server.address
    with DatabaseClient(host, port) as connection:
        connection.open("hr", SOURCE)
        yield connection


@pytest.fixture
def slow_server(tmp_path):
    instance = DatabaseServer(
        tmp_path / "slowroot",
        port=0,
        sync=False,
        config=EngineConfig(slow_query_ms=0.0),
    ).start()
    yield instance
    instance.close()


@pytest.fixture
def slow_client(slow_server):
    host, port = slow_server.address
    with DatabaseClient(host, port) as connection:
        connection.open("hr", SOURCE)
        yield connection


class TestExplainRoundTrip:
    def test_client_trace_id_survives_the_round_trip(self, client):
        response = client.explain("hr", "employee(ann)")
        assert response["value"] is True
        assert response["trace_id"] == client.last_trace_id
        explain = response["explain"]
        assert explain["trace_id"] == client.last_trace_id
        assert explain["elapsed_seconds"] >= 0.0

    def test_server_spans_parent_on_the_client_span(self, client):
        explain = client.explain("hr", "employee(ann)")["explain"]
        spans = explain["spans"]
        names = [span["name"] for span in spans]
        assert "verb" in names
        # The outermost server span's parent is the client's span id —
        # the client call is the root of the tree.
        verb = next(span for span in spans if span["name"] == "verb")
        assert verb["parent_id"] == explain["parent_span_id"]
        assert verb["parent_id"] is not None

    def test_explain_carries_correlation_attrs(self, client):
        explain = client.explain("hr", "employee(ann)")["explain"]
        assert explain["attrs"]["verb"] == "query"
        assert explain["attrs"]["db"] == "hr"
        assert "request_id" in explain["attrs"]

    def test_each_call_gets_a_fresh_trace(self, client):
        first = client.explain("hr", "employee(ann)")["trace_id"]
        second = client.explain("hr", "employee(ann)")["trace_id"]
        assert first != second

    def test_plain_requests_skip_the_explain_payload(self, client):
        response = client.call("query", db="hr", formula="employee(ann)")
        assert "explain" not in response


class TestSlowLogCorrelation:
    def test_slow_record_carries_the_client_trace_id(
        self, slow_client, caplog
    ):
        with caplog.at_level(
            logging.WARNING, logger="repro.obs.slowquery"
        ):
            assert slow_client.query("hr", "employee(ann)")
        records = [
            record
            for record in caplog.records
            if getattr(record, "trace_id", None)
            == slow_client.last_trace_id
        ]
        assert records, "the slow log must carry the client's trace_id"
        record = records[-1]
        assert record.verb == "query"
        assert record.db == "hr"
        assert record.request_id is not None
        assert record.trace_id in record.getMessage()

    def test_commit_spans_ride_the_slow_trace(self, slow_client, caplog):
        with caplog.at_level(
            logging.WARNING, logger="repro.obs.slowquery"
        ):
            session = slow_client.begin("hr")
            session.insert("employee(zoe)")
            session.commit()
        commits = [
            record
            for record in caplog.records
            if getattr(record, "verb", None) == "commit"
        ]
        assert commits
        trace = commits[-1].query_trace
        span_names = {span["name"] for span in trace["spans"]}
        assert "verb" in span_names
        assert "gate.check" in span_names


class TestVerbFailedCorrelation:
    def test_failed_verb_logs_request_id_and_trace_id(
        self, client, caplog
    ):
        with caplog.at_level(logging.WARNING, logger="repro.obs.server"):
            with pytest.raises(ServiceError):
                client.call("frobnicate")
        records = [
            record
            for record in caplog.records
            if getattr(record, "event", None) == "verb_failed"
        ]
        assert records
        record = records[-1]
        assert record.trace_id == client.last_trace_id
        assert record.request_id is not None
        assert f"trace_id={record.trace_id}" in record.getMessage()


class TestReadyzUnderWalFailure:
    def test_readyz_flips_and_recovers(self, server, client):
        metrics_host, metrics_port = server.metrics_address
        base = f"http://{metrics_host}:{metrics_port}"
        session = client.begin("hr")
        session.insert("employee(bo)")
        session.commit()
        status, _ = _get(base + "/readyz")
        assert status == 200

        wal = server.database("hr").manager.storage.wal
        original = wal._handle

        def broken():
            raise OSError("injected: disk gone")

        wal._handle = broken
        try:
            failing = client.begin("hr")
            failing.insert("employee(cruz)")
            with pytest.raises(ServiceError):
                failing.commit()
            status, body = _get(base + "/readyz")
            assert status == 503
            checks = json.loads(body)["checks"]
            assert checks["wal_writable"]["ok"] is False
        finally:
            wal._handle = original

        # The next durable write clears the health gauge.
        retry = client.begin("hr")
        retry.insert("employee(cruz)")
        retry.commit()
        status, _ = _get(base + "/readyz")
        assert status == 200
        assert client.holds("hr", "employee(cruz)")


class TestConcurrentScrape:
    def test_scraping_while_committing(self, server, client):
        metrics_host, metrics_port = server.metrics_address
        base = f"http://{metrics_host}:{metrics_port}"
        errors: list = []

        def commits():
            host, port = server.address
            try:
                with DatabaseClient(host, port) as writer:
                    for n in range(20):
                        session = writer.begin("hr")
                        session.insert(f"employee(w{n})")
                        session.commit()
            except Exception as error:  # surfaced by the main thread
                errors.append(error)

        threads = [threading.Thread(target=commits) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(20):
                status, body = _get(base + "/metrics")
                assert status == 200
                assert b"repro_txn_commits_total" in body
                status, body = _get(base + "/metrics.json")
                assert status == 200
                payload = json.loads(body)
                assert payload["metrics"]["txn.commits"] >= 0
                assert "databases" in payload["info"]
        finally:
            for thread in threads:
                thread.join()
        assert not errors
        status, _ = _get(base + "/healthz")
        assert status == 200

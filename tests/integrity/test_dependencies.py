"""Unit tests for direct dependencies and potential updates (Def. 5)."""

from repro.datalog.program import Program, Rule
from repro.integrity.dependencies import (
    DependencyIndex,
    potential_updates,
)
from repro.logic.parser import parse_literal, parse_rule
from repro.logic.unify import subsumes


def program(*texts):
    return Program([Rule.from_parsed(parse_rule(t)) for t in texts])


class TestDependencyIndex:
    def test_positive_and_negative_edges_per_body_literal(self):
        index = DependencyIndex(program("r(X) :- q(X, Y), p(Y, Z)"))
        # 2 body literals × 2 polarities = 4 edges.
        assert len(index.dependencies) == 4

    def test_triggered_by_insertion(self):
        index = DependencyIndex(program("member(X, Y) :- leads(X, Y)"))
        deps = list(index.triggered_by(parse_literal("leads(ann, sales)")))
        assert len(deps) == 1
        assert deps[0].result.pred == "member"
        assert deps[0].result.positive

    def test_triggered_by_deletion(self):
        index = DependencyIndex(program("member(X, Y) :- leads(X, Y)"))
        deps = list(index.triggered_by(parse_literal("not leads(ann, sales)")))
        assert len(deps) == 1
        assert not deps[0].result.positive

    def test_negative_body_literal_flips(self):
        # idle(X) :- employee(X), not member(X, Y): inserting member can
        # retract idle; deleting member can assert idle.
        index = DependencyIndex(
            program("idle(X) :- employee(X, Y), not member(X, Y)")
        )
        inserted = list(index.triggered_by(parse_literal("member(a, b)")))
        assert any(
            not d.result.positive and d.result.pred == "idle" for d in inserted
        )
        deleted = list(index.triggered_by(parse_literal("not member(a, b)")))
        assert any(
            d.result.positive and d.result.pred == "idle" for d in deleted
        )

    def test_renaming_avoids_capture(self):
        index = DependencyIndex(program("p(X) :- q(X, Y)"))
        update = parse_literal("q(X, b)")  # deliberately reuses name X
        deps = list(index.triggered_by(update))
        assert len(deps) == 1
        trigger_vars = deps[0].trigger.atom.variables()
        # The dependency's own variables were renamed away from the
        # update's X.
        from repro.logic.terms import Variable

        assert Variable("X") not in trigger_vars

    def test_backward_closure(self):
        index = DependencyIndex(
            program(
                "b(X) :- a(X)",
                "c(X) :- b(X)",
                "z(X) :- y(X)",
            )
        )
        closure = index.backward_closure({("c", True)})
        assert ("b", True) in closure
        assert ("a", True) in closure
        assert ("y", True) not in closure
        assert ("z", True) not in closure


class TestPotentialUpdates:
    def test_includes_update_itself(self):
        prog = program("member(X, Y) :- leads(X, Y)")
        out = potential_updates(prog, parse_literal("leads(ann, sales)"))
        assert parse_literal("leads(ann, sales)") in out

    def test_single_step(self):
        prog = program("member(X, Y) :- leads(X, Y)")
        out = potential_updates(prog, parse_literal("leads(ann, sales)"))
        assert parse_literal("member(ann, sales)") in out

    def test_chain(self):
        prog = program(
            "b(X) :- a(X)",
            "c(X) :- b(X)",
        )
        out = potential_updates(prog, parse_literal("a(k)"))
        preds = {l.atom.pred for l in out}
        assert preds == {"a", "b", "c"}

    def test_join_variable_stays_open(self):
        # r(X) :- q(X, Y), p(Y, Z): updating p(a, b) makes r(X) a
        # potential update for any X (Section 3.2's example).
        prog = program("r(X) :- q(X, Y), p(Y, Z)")
        out = potential_updates(prog, parse_literal("p(a, b)"))
        r_updates = [l for l in out if l.atom.pred == "r"]
        assert len(r_updates) == 1
        assert not r_updates[0].atom.is_ground()

    def test_deletion_propagates_negatively(self):
        prog = program("member(X, Y) :- leads(X, Y)")
        out = potential_updates(prog, parse_literal("not leads(ann, sales)"))
        assert parse_literal("not member(ann, sales)") in out

    def test_recursive_rules_terminate_via_subsumption(self):
        prog = program(
            "anc(X, Y) :- par(X, Y)",
            "anc(X, Y) :- par(X, Z), anc(Z, Y)",
        )
        out = potential_updates(prog, parse_literal("par(a, b)"))
        # Finite: par(a,b) itself plus a most-general anc pattern that
        # subsumes all the specializations the closure would generate.
        anc_updates = [l for l in out if l.atom.pred == "anc"]
        assert len(anc_updates) <= 3
        # Every specialized anc potential update is subsumed by one kept.
        assert any(
            subsumes(kept, parse_literal("anc(a, b)")) for kept in anc_updates
        )

    def test_mutually_recursive_rules_terminate(self):
        prog = program(
            "even(X) :- zero(X)",
            "even(X) :- succ(Y, X), odd(Y)",
            "odd(X) :- succ(Y, X), even(Y)",
        )
        out = potential_updates(prog, parse_literal("succ(3, 4)"))
        preds = {l.atom.pred for l in out}
        assert {"succ", "even", "odd"} <= preds

    def test_transaction_seed(self):
        prog = program("member(X, Y) :- leads(X, Y)")
        out = potential_updates(
            prog,
            [parse_literal("leads(a, b)"), parse_literal("not leads(c, d)")],
        )
        assert parse_literal("member(a, b)") in out
        assert parse_literal("not member(c, d)") in out

    def test_no_rules_no_propagation(self):
        out = potential_updates(Program(), parse_literal("p(a)"))
        assert out == [parse_literal("p(a)")]

"""Unit tests for constraint relevance (Definition 2)."""

from repro.datalog.database import DeductiveDatabase
from repro.integrity.relevance import RelevanceIndex, relevant_constraints
from repro.logic.parser import parse_literal


def build_constraints(*texts):
    db = DeductiveDatabase()
    for text in texts:
        db.add_constraint(text)
    return db.constraints


class TestRelevance:
    def test_insertion_relevant_to_negative_occurrence(self):
        # C: forall X: p(X) -> q(X) has occurrence ¬p(X); inserting p(a)
        # (complement ¬p(a)) unifies with it.
        constraints = build_constraints("forall X: p(X) -> q(X)")
        index = RelevanceIndex(constraints)
        assert index.relevant_constraints(parse_literal("p(a)")) == [
            constraints[0]
        ]

    def test_insertion_not_relevant_to_positive_only_occurrence(self):
        # Inserting q(a): complement ¬q(a); C has q(X) only positively,
        # so C cannot be falsified by the insertion.
        constraints = build_constraints("forall X: p(X) -> q(X)")
        index = RelevanceIndex(constraints)
        assert index.relevant_constraints(parse_literal("q(a)")) == []

    def test_deletion_relevant_to_positive_occurrence(self):
        constraints = build_constraints("forall X: p(X) -> q(X)")
        index = RelevanceIndex(constraints)
        assert index.relevant_constraints(parse_literal("not q(a)")) == [
            constraints[0]
        ]

    def test_deletion_not_relevant_to_negative_occurrence(self):
        constraints = build_constraints("forall X: p(X) -> q(X)")
        index = RelevanceIndex(constraints)
        assert index.relevant_constraints(parse_literal("not p(a)")) == []

    def test_unrelated_predicate_not_relevant(self):
        constraints = build_constraints("forall X: p(X) -> q(X)")
        index = RelevanceIndex(constraints)
        assert index.relevant_constraints(parse_literal("r(a)")) == []

    def test_constant_clash_not_relevant(self):
        constraints = build_constraints("p(a) -> q(a)")
        index = RelevanceIndex(constraints)
        assert index.relevant_constraints(parse_literal("p(b)")) == []
        assert index.relevant_constraints(parse_literal("p(a)")) != []

    def test_multiple_constraints(self):
        constraints = build_constraints(
            "forall X: p(X) -> q(X)",
            "forall X: p(X) -> r(X)",
            "forall X: s(X) -> t(X)",
        )
        index = RelevanceIndex(constraints)
        relevant = index.relevant_constraints(parse_literal("p(a)"))
        assert len(relevant) == 2

    def test_existential_restriction_occurrence(self):
        # Deleting department(d) can falsify the existential.
        constraints = build_constraints(
            "forall X: employee(X) -> exists Y: department(Y) and member(X, Y)"
        )
        index = RelevanceIndex(constraints)
        assert index.relevant_constraints(
            parse_literal("not department(d)")
        ) == [constraints[0]]
        # Inserting department(d) cannot falsify it.
        assert (
            index.relevant_constraints(parse_literal("department(d)")) == []
        )

    def test_pattern_update_relevance(self):
        # Compile-time use: the update may be a pattern with variables.
        constraints = build_constraints("forall X: p(X) -> q(X)")
        index = RelevanceIndex(constraints)
        assert index.relevant_constraints(parse_literal("p(W)")) == [
            constraints[0]
        ]

    def test_signatures(self):
        constraints = build_constraints("forall X: p(X) -> q(X)")
        index = RelevanceIndex(constraints)
        assert index.signatures() == {("p", False), ("q", True)}

    def test_convenience_wrapper(self):
        constraints = build_constraints("forall X: p(X) -> q(X)")
        assert relevant_constraints(constraints, parse_literal("p(a)")) == [
            constraints[0]
        ]

"""Unit tests for simplified instances (Definition 3), pinned to the
paper's own examples."""

from repro.datalog.database import DeductiveDatabase
from repro.integrity.instances import (
    simplified_instances,
    top_universal_variables,
)
from repro.logic.formulas import Atom, Exists, Forall, Literal
from repro.logic.parser import parse_formula, parse_literal
from repro.logic.normalize import normalize_constraint
from repro.logic.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a = Constant("a")


def constraint(text, id="c"):
    db = DeductiveDatabase()
    return db.add_constraint(text, id=id)


class TestTopUniversalVariables:
    def test_plain_universal(self):
        formula = normalize_constraint(parse_formula("forall X: p(X) -> q(X)"))
        assert top_universal_variables(formula) == {X}

    def test_universal_under_existential_is_governed(self):
        formula = normalize_constraint(
            parse_formula(
                "exists X: p(X) and (forall Y: q(X, Y) -> r(Y))"
            )
        )
        assert top_universal_variables(formula) == set()

    def test_paper_c2_shape(self):
        formula = normalize_constraint(
            parse_formula(
                "forall X, Y: p(X, Y) -> exists Z: q(X, Z) and not s(Y, Z, a)"
            )
        )
        assert top_universal_variables(formula) == {X, Y}

    def test_universal_nested_in_universal(self):
        formula = normalize_constraint(
            parse_formula(
                "forall X, Y: member(X, Y) -> "
                "(forall Z: leads(Z, Y) -> subordinate(X, Z))"
            )
        )
        # All three are top-universal (no existential in between).
        names = {v.name for v in top_universal_variables(formula)}
        assert names == {"X", "Y", "Z"}


class TestPaperExampleC1:
    """C1: forall X: ¬p(X) ∨ q(X); update p(a) gives instance q(a)."""

    def test_simplified_instance(self):
        c1 = constraint("forall X: p(X) -> q(X)", id="C1")
        instances = simplified_instances(c1, parse_literal("p(a)"))
        assert len(instances) == 1
        assert instances[0].formula == Literal(Atom("q", (a,)))

    def test_defining_substitution(self):
        c1 = constraint("forall X: p(X) -> q(X)", id="C1")
        (instance,) = simplified_instances(c1, parse_literal("p(a)"))
        # tau binds the constraint's X (possibly renamed) to a.
        assert list(instance.tau.items())[0][1] == a

    def test_irrelevant_update_no_instances(self):
        c1 = constraint("forall X: p(X) -> q(X)", id="C1")
        assert simplified_instances(c1, parse_literal("q(a)")) == []
        assert simplified_instances(c1, parse_literal("r(a)")) == []

    def test_deletion_of_consequent(self):
        # not q(a): instance is ¬p(a) (q(a) replaced by false).
        c1 = constraint("forall X: p(X) -> q(X)", id="C1")
        instances = simplified_instances(c1, parse_literal("not q(a)"))
        assert len(instances) == 1
        assert instances[0].formula == Literal(Atom("p", (a,)), False)


class TestPaperExampleC2:
    """C2: ∀XY ¬p(X,Y) ∨ ∃Z (q(X,Z) ∧ ¬s(Y,Z,a)).

    The update ¬q(c1, c2) must yield
        ∀Y ¬p(c1, Y) ∨ ∃Z (q(c1, Z) ∧ ¬s(Y, Z, a))
    with Z unbound (Section 3, the worked Definition 3 example).
    """

    C2_TEXT = "forall X, Y: p(X, Y) -> exists Z: q(X, Z) and not s(Y, Z, a)"

    def test_deletion_of_q(self):
        c2 = constraint(self.C2_TEXT, id="C2")
        instances = simplified_instances(c2, parse_literal("not q(c1, c2)"))
        assert len(instances) == 1
        formula = instances[0].formula
        assert isinstance(formula, Forall)
        assert len(formula.variables_tuple) == 1  # only Y remains
        assert formula.restriction[0].pred == "p"
        assert formula.restriction[0].args[0] == Constant("c1")
        inner = formula.matrix
        assert isinstance(inner, Exists)
        # Z must remain quantified, not bound to c2.
        assert inner.restriction[0].args[1] in inner.variables_tuple

    def test_insertion_of_p(self):
        c2 = constraint(self.C2_TEXT, id="C2")
        instances = simplified_instances(c2, parse_literal("p(c1, c2)"))
        assert len(instances) == 1
        formula = instances[0].formula
        # Both X and Y grounded; quantifier dropped; the ¬p(c1,c2)
        # disjunct replaced by false, leaving the bare existential.
        assert isinstance(formula, Exists)

    def test_insertion_of_s(self):
        c2 = constraint(self.C2_TEXT, id="C2")
        instances = simplified_instances(c2, parse_literal("s(b, c, a)"))
        assert len(instances) == 1
        formula = instances[0].formula
        # tau binds only Y (X stays universal): ∀X ¬p(X,b) ∨ ∃Z (...)
        assert isinstance(formula, Forall)
        assert len(formula.variables_tuple) == 1

    def test_constant_mismatch_in_s(self):
        c2 = constraint(self.C2_TEXT, id="C2")
        # s's third argument in C2 is the constant a; updating s(_,_,b)
        # cannot unify.
        assert simplified_instances(c2, parse_literal("s(b, c, b)")) == []


class TestPatternUpdates:
    """Compile-time instances for non-ground (potential) updates."""

    def test_pattern_insert(self):
        c1 = constraint("forall X: p(X) -> q(X)", id="C1")
        W = Variable("W")
        instances = simplified_instances(
            c1, Literal(Atom("p", (W,)), True)
        )
        assert len(instances) == 1
        instance = instances[0]
        # The residual instance is q(W), guarded by trigger p(W).
        assert instance.formula == Literal(Atom("q", (W,)))
        assert instance.trigger == Literal(Atom("p", (W,)), True)

    def test_pattern_instance_instantiation(self):
        c1 = constraint("forall X: p(X) -> q(X)", id="C1")
        W = Variable("W")
        (instance,) = simplified_instances(c1, Literal(Atom("p", (W,))))
        from repro.logic.substitution import Substitution

        ground = instance.instantiate(Substitution({W: a}))
        assert ground == Literal(Atom("q", (a,)))


class TestMultipleOccurrences:
    def test_two_occurrences_two_instances(self):
        # C: forall X, Y: p(X, Y) and p(Y, X) -> sym(X, Y); inserting
        # p(a, b) unifies with both occurrences.
        c = constraint(
            "forall X, Y: p(X, Y) and p(Y, X) -> sym(X, Y)", id="C"
        )
        instances = simplified_instances(c, parse_literal("p(a, b)"))
        assert len(instances) == 2
        formulas = {i.formula for i in instances}
        assert len(formulas) == 2

    def test_identical_instances_deduplicated(self):
        # Symmetric constant positions produce one distinct instance.
        c = constraint("forall X: p(X, X) -> q(X)", id="C")
        instances = simplified_instances(c, parse_literal("p(a, a)"))
        assert len(instances) == 1


class TestGroundConstraint:
    def test_ground_constraint_instance(self):
        c = constraint("p(a) -> q(a)", id="C")
        instances = simplified_instances(c, parse_literal("p(a)"))
        assert len(instances) == 1
        assert instances[0].formula == Literal(Atom("q", (a,)))

    def test_existential_guard_deletion(self):
        # exists X: p(X): deleting p(a) leaves the existential to
        # re-check (the instance is the constraint minus the false
        # witness — here the whole constraint).
        c = constraint("exists X: p(X)", id="C")
        instances = simplified_instances(c, parse_literal("not p(a)"))
        assert len(instances) == 1
        assert isinstance(instances[0].formula, Exists)

"""Tests for constraint-addition triage (the uniform approach)."""


from repro.datalog.database import DeductiveDatabase
from repro.integrity.evolution import (
    ACCEPTED,
    INCOMPATIBLE,
    REPAIRABLE,
    UNDECIDED,
    assess_constraint_addition,
)


class TestAccepted:
    def test_already_satisfied(self):
        db = DeductiveDatabase.from_source("p(a). q(a).")
        result = assess_constraint_addition(db, "forall X: p(X) -> q(X)")
        assert result.status == ACCEPTED
        assert result.witnesses == []

    def test_vacuously_satisfied(self):
        db = DeductiveDatabase.from_source("q(a).")
        result = assess_constraint_addition(db, "forall X: p(X) -> r(X)")
        assert result.status == ACCEPTED

    def test_satisfied_through_rules(self):
        db = DeductiveDatabase.from_source(
            "leads(ann, sales). member(X, Y) :- leads(X, Y)."
        )
        result = assess_constraint_addition(
            db, "forall X, Y: leads(X, Y) -> member(X, Y)"
        )
        assert result.status == ACCEPTED


class TestRepairable:
    def test_missing_fact_is_repairable(self):
        db = DeductiveDatabase.from_source("p(a).")
        result = assess_constraint_addition(db, "forall X: p(X) -> q(X)")
        assert result.status == REPAIRABLE
        assert len(result.witnesses) == 1
        assert result.sample_model is not None

    def test_repairable_with_existing_constraints(self):
        db = DeductiveDatabase.from_source(
            """
            employee(ann).
            forall X: employee(X) -> exists Y: badge(X, Y).
            """
        )
        db.apply_update("badge(ann, b1)")
        result = assess_constraint_addition(
            db, "forall X, Y: badge(X, Y) -> active(Y)"
        )
        assert result.status == REPAIRABLE

    def test_database_not_modified(self):
        db = DeductiveDatabase.from_source("p(a).")
        n_constraints = len(db.constraints)
        assess_constraint_addition(db, "forall X: p(X) -> q(X)")
        assert len(db.constraints) == n_constraints


class TestIncompatible:
    def test_contradicts_existing_constraint(self):
        db = DeductiveDatabase.from_source(
            """
            p(a).
            exists X: p(X).
            forall X: p(X) -> q(X).
            """
        )
        db.apply_update("q(a)")
        # New constraint: nothing may be q — together with "some p" and
        # "p implies q" this is unsatisfiable.
        result = assess_constraint_addition(db, "forall X: not q(X)")
        assert result.status == INCOMPATIBLE
        assert result.satisfiability.unsatisfiable

    def test_contradicts_rules(self):
        db = DeductiveDatabase.from_source(
            """
            leads(ann, sales).
            member(X, Y) :- leads(X, Y).
            exists X, Y: leads(X, Y).
            """
        )
        result = assess_constraint_addition(
            db, "forall X, Y: not member(X, Y)"
        )
        assert result.status == INCOMPATIBLE

    def test_section5_constraint_set_detected(self):
        # Building up the §5 set: the database satisfies constraints
        # (1), (2), (3), (5) — at the price of subordinate(a, a). The
        # candidate constraint (4) is violated now, and the
        # satisfiability check shows no factual repair can ever work:
        # the full §5 set has no finite model.
        db = DeductiveDatabase.from_source(
            """
            employee(a). department(b). leads(a, b). subordinate(a, a).
            member(X, Y) :- leads(X, Y).
            forall X: employee(X) ->
                exists Y: department(Y) and member(X, Y).
            forall X: department(X) ->
                exists Y: employee(Y) and leads(Y, X).
            forall X, Y: member(X, Y) ->
                (forall Z: leads(Z, Y) -> subordinate(X, Z)).
            exists X: employee(X).
            """
        )
        assert db.all_constraints_satisfied()
        result = assess_constraint_addition(
            db, "forall X: not subordinate(X, X)", max_fresh_constants=6
        )
        assert result.status == INCOMPATIBLE
        assert len(result.witnesses) == 1


class TestUndecided:
    def test_axiom_of_infinity_undecided(self):
        # The existing *constraints* (not just facts) force an infinite
        # r-chain; the candidate constraint is violated now, and the
        # bounded satisfiability search cannot settle compatibility.
        db = DeductiveDatabase.from_source(
            """
            exists X: p(X).
            forall X: p(X) -> exists Y: p(Y) and r(X, Y).
            forall X: not r(X, X).
            forall X, Y: r(X, Y) -> not r(Y, X).
            forall [X, Y, Z]: r(X, Y) and r(Y, Z) -> r(X, Z).
            """
        )
        result = assess_constraint_addition(
            db, "exists X: q(X)", max_fresh_constants=3, max_levels=40
        )
        assert result.status == UNDECIDED

"""The checker must give identical verdicts under every query-engine
strategy (lazy per-closure materialization, tabled top-down, full
model)."""

import pytest

from repro.config import EngineConfig
from repro.datalog.database import DeductiveDatabase
from repro.integrity.checker import IntegrityChecker

SOURCE = """
par(a, b). par(b, c).
person(a). person(b). person(c).
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
forall X, Y: anc(X, Y) -> person(Y).
exists X: person(X).
"""

UPDATES = [
    ("par(c, d)", False),   # d is not a person
    ("par(c, a)", True),    # cycle, but all persons
    ("person(d)", True),
    ("not par(a, b)", True),
    ("not person(c)", False),
]

STRATEGIES = ["lazy", "topdown", "model"]


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("update, expected_ok", UPDATES)
def test_bdm_across_strategies(strategy, update, expected_ok):
    db = DeductiveDatabase.from_source(SOURCE)
    checker = IntegrityChecker(db, config=EngineConfig(strategy=strategy))
    assert checker.check_bdm(update).ok is expected_ok


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_interleaved_across_strategies(strategy):
    db = DeductiveDatabase.from_source(SOURCE)
    checker = IntegrityChecker(db, config=EngineConfig(strategy=strategy))
    assert not checker.check_interleaved("par(c, d)").ok
    assert checker.check_interleaved("par(c, a)").ok


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_lloyd_across_strategies(strategy):
    db = DeductiveDatabase.from_source(SOURCE)
    checker = IntegrityChecker(db, config=EngineConfig(strategy=strategy))
    assert not checker.check_lloyd("par(c, d)").ok
    assert checker.check_lloyd("par(c, a)").ok


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_rule_updates_across_strategies(strategy):
    db = DeductiveDatabase.from_source(
        """
        student(jack). student(jill). attends(jack, ddb).
        forall X: enrolled(X, cs) -> attends(X, ddb).
        """
    )
    checker = IntegrityChecker(db, config=EngineConfig(strategy=strategy))
    result = checker.check_rule_addition("enrolled(X, cs) :- student(X)")
    assert not result.ok

"""Unit tests for the compile phase (Definition 6 / CompiledCheck)."""


from repro.datalog.database import DeductiveDatabase
from repro.integrity.update_constraints import compile_update_constraints
from repro.logic.parser import parse_literal


def compile_for(source, *updates):
    db = DeductiveDatabase.from_source(source)
    return compile_update_constraints(
        db.program,
        db.constraints,
        [parse_literal(u) for u in updates],
    )


class TestCompilation:
    UNIVERSITY = """
    enrolled(X, cs) :- student(X).
    forall X: student(X) -> (not enrolled(X, cs)) or attends(X, ddb).
    """

    def test_paper_s1_s2_compiled(self):
        compiled = compile_for(self.UNIVERSITY, "student(jack)")
        # S1 guards the explicit update, S2 the induced enrolled-update.
        triggers = {uc.trigger.atom.pred for uc in compiled.update_constraints}
        assert triggers == {"student", "enrolled"}

    def test_potential_updates_include_seed(self):
        compiled = compile_for(self.UNIVERSITY, "student(jack)")
        assert parse_literal("student(jack)") in compiled.potential

    def test_demanded_signatures(self):
        compiled = compile_for(self.UNIVERSITY, "student(jack)")
        assert compiled.demanded_signatures() == {
            ("student", True),
            ("enrolled", True),
        }

    def test_irrelevant_update_compiles_empty(self):
        compiled = compile_for(self.UNIVERSITY, "attends(jack, logic)")
        # attends occurs only positively: insertions cannot violate.
        assert compiled.update_constraints == []

    def test_deletion_triggers(self):
        compiled = compile_for(self.UNIVERSITY, "not attends(jack, ddb)")
        triggers = {
            (uc.trigger.atom.pred, uc.trigger.positive)
            for uc in compiled.update_constraints
        }
        assert ("attends", False) in triggers

    def test_transaction_compilation_merges(self):
        compiled = compile_for(
            self.UNIVERSITY, "student(jack)", "not attends(jill, ddb)"
        )
        kinds = {
            (uc.trigger.atom.pred, uc.trigger.positive)
            for uc in compiled.update_constraints
        }
        assert ("student", True) in kinds
        assert ("attends", False) in kinds

    def test_duplicate_update_constraints_deduplicated(self):
        compiled = compile_for(
            self.UNIVERSITY, "student(jack)", "student(jack)"
        )
        assert len(compiled.update_constraints) == 2  # S1 and S2 once

    def test_repr(self):
        compiled = compile_for(self.UNIVERSITY, "student(jack)")
        text = repr(compiled)
        assert "potential" in text
        assert "update constraints" in text


class TestPatternCompilation:
    def test_open_pattern_compiles(self):
        db = DeductiveDatabase.from_source(
            "forall X: p(X) -> q(X)."
        )
        from repro.logic.formulas import Atom, Literal
        from repro.logic.terms import Variable

        pattern = Literal(Atom("p", (Variable("W"),)))
        compiled = compile_update_constraints(
            db.program, db.constraints, [pattern]
        )
        assert len(compiled.update_constraints) == 1
        (uc,) = compiled.update_constraints
        # The trigger and the residual instance share the variable.
        assert uc.trigger.atom.variables() == uc.instance.formula.variables()

    def test_recursive_program_compiles_finitely(self):
        db = DeductiveDatabase.from_source(
            """
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
            forall X, Y: anc(X, Y) -> person(Y).
            """
        )
        compiled = compile_update_constraints(
            db.program, db.constraints, [parse_literal("par(a, b)")]
        )
        assert 1 <= len(compiled.update_constraints) <= 3
        assert len(compiled.potential) <= 3

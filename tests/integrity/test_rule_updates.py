"""Tests for rule updates (Section 3.2: "Rule updates can be treated
like conditional updates"). Ground truth is always the full check on
the database with the changed program."""

import pytest

from repro.datalog.database import DeductiveDatabase
from repro.datalog.program import Program, Rule
from repro.integrity.checker import IntegrityChecker
from repro.logic.parser import parse_rule


def full_check_with_program(db, rules):
    changed = DeductiveDatabase(
        db.facts, Program(rules), list(db.constraints)
    )
    return changed.all_constraints_satisfied()


class TestRuleAddition:
    def test_harmless_rule(self):
        db = DeductiveDatabase.from_source(
            """
            student(jack). attends(jack, ddb).
            forall X: enrolled(X, cs) -> attends(X, ddb).
            """
        )
        checker = IntegrityChecker(db)
        result = checker.check_rule_addition("enrolled(X, cs) :- student(X)")
        assert result.ok

    def test_violating_rule(self):
        db = DeductiveDatabase.from_source(
            """
            student(jack). student(jill). attends(jack, ddb).
            forall X: enrolled(X, cs) -> attends(X, ddb).
            """
        )
        checker = IntegrityChecker(db)
        result = checker.check_rule_addition("enrolled(X, cs) :- student(X)")
        assert not result.ok
        # jill is the culprit.
        assert any(
            "jill" in str(v.instance) for v in result.violations
        )

    def test_rule_with_no_relevant_constraint_is_free(self):
        db = DeductiveDatabase.from_source(
            """
            q(a, b).
            forall X: s(X) -> t(X).
            """
        )
        checker = IntegrityChecker(db)
        result = checker.check_rule_addition("r(X) :- q(X, Y)")
        assert result.ok
        assert result.stats["update_constraints"] == 0
        assert result.stats["lookups"] == 0

    def test_cascades_through_existing_rules(self):
        db = DeductiveDatabase.from_source(
            """
            base(a).
            top(X) :- mid(X).
            forall X: top(X) -> allowed(X).
            """
        )
        checker = IntegrityChecker(db)
        # Adding mid <- base induces top(a) through the existing rule.
        result = checker.check_rule_addition("mid(X) :- base(X)")
        assert not result.ok

    def test_negation_cascade_on_addition(self):
        db = DeductiveDatabase.from_source(
            """
            emp(a). project(p1). assigned(a, p1).
            idle(X) :- emp(X), not busy(X).
            forall X: emp(X) -> idle(X) or excused(X).
            """
        )
        checker = IntegrityChecker(db)
        # busy <- assigned kills idle(a): constraint violated.
        result = checker.check_rule_addition(
            "busy(X) :- assigned(X, Y)"
        )
        assert not result.ok

    def test_agreement_with_full_recheck(self):
        db = DeductiveDatabase.from_source(
            """
            student(jack). student(jill). attends(jack, ddb).
            forall X: enrolled(X, cs) -> attends(X, ddb).
            """
        )
        checker = IntegrityChecker(db)
        new_rule = Rule.from_parsed(parse_rule("enrolled(X, cs) :- student(X)"))
        expected = full_check_with_program(
            db, list(db.program.rules) + [new_rule]
        )
        assert checker.check_rule_addition(new_rule).ok is expected


class TestRuleRemoval:
    SOURCE = """
    leads(ann, sales). employee(ann). department(sales).
    member(X, Y) :- leads(X, Y).
    forall X: employee(X) -> exists Y: member(X, Y).
    """

    def test_removal_violates_existential(self):
        db = DeductiveDatabase.from_source(self.SOURCE)
        checker = IntegrityChecker(db)
        result = checker.check_rule_removal("member(X, Y) :- leads(X, Y)")
        assert not result.ok

    def test_removal_harmless_with_backup_fact(self):
        db = DeductiveDatabase.from_source(
            self.SOURCE + "member(ann, sales)."
        )
        checker = IntegrityChecker(db)
        result = checker.check_rule_removal("member(X, Y) :- leads(X, Y)")
        assert result.ok

    def test_removing_missing_rule_rejected(self):
        db = DeductiveDatabase.from_source(self.SOURCE)
        checker = IntegrityChecker(db)
        with pytest.raises(ValueError):
            checker.check_rule_removal("member(X, Y) :- hired(X, Y)")

    def test_agreement_with_full_recheck(self):
        db = DeductiveDatabase.from_source(self.SOURCE)
        checker = IntegrityChecker(db)
        rule = db.program.rules[0]
        expected = full_check_with_program(
            db, [r for r in db.program.rules if r != rule]
        )
        assert checker.check_rule_removal(rule).ok is expected

    def test_negation_cascade_on_removal(self):
        db = DeductiveDatabase.from_source(
            """
            emp(a). assigned(a, p1).
            busy(X) :- assigned(X, Y).
            idle(X) :- emp(X), not busy(X).
            forall X: not idle(X).
            """
        )
        checker = IntegrityChecker(db)
        # Removing the busy-rule resurrects idle(a): violation.
        result = checker.check_rule_removal("busy(X) :- assigned(X, Y)")
        assert not result.ok

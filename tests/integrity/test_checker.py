"""Integration tests for the integrity checking methods.

The central invariant (Propositions 1–3): on databases whose
constraints hold, every method must agree with the full check.
"""

import pytest

from repro.datalog.database import DeductiveDatabase
from repro.integrity.checker import IntegrityChecker
from repro.integrity.transactions import Transaction
from repro.logic.parser import parse_literal

UNIVERSITY = """
student(jack).
student(jill).
attends(jack, ddb).
attends(jill, ddb).
enrolled(X, cs) :- student(X).

forall X: student(X) -> (not enrolled(X, cs)) or attends(X, ddb).
"""
# The constraint is the paper's Ci' from Section 3.2:
#   ∀X ¬student(X) ∨ ¬enrolled(X, cs) ∨ attends(X, ddb)


def make_checker(source):
    db = DeductiveDatabase.from_source(source)
    return db, IntegrityChecker(db)


ALL_METHODS = ["check_full", "check_bdm", "check_interleaved", "check_lloyd"]
DEDUCTIVE_METHODS = ["check_bdm", "check_interleaved", "check_lloyd"]


class TestRelationalAgreement:
    SOURCE = """
    p(a). q(a). p(b). q(b).
    forall X: p(X) -> q(X).
    exists X: p(X).
    """

    @pytest.mark.parametrize(
        "method", ALL_METHODS + ["check_nicolas"]
    )
    @pytest.mark.parametrize(
        "update, expected_ok",
        [
            ("p(c)", False),   # p(c) without q(c)
            ("p(a)", True),    # no-op insert
            ("q(c)", True),    # irrelevant direction
            ("not q(a)", False),  # breaks p(a) -> q(a)
            ("not q(c)", True),   # no-op delete
            ("not p(b)", True),   # deleting antecedent is safe
        ],
    )
    def test_methods_agree(self, method, update, expected_ok):
        db, checker = make_checker(self.SOURCE)
        result = getattr(checker, method)(update)
        assert result.ok is expected_ok, f"{method} on {update}: {result}"

    def test_existential_deletion_detected(self):
        db, checker = make_checker("p(a). exists X: p(X).")
        for method in ALL_METHODS + ["check_nicolas"]:
            result = getattr(checker, method)("not p(a)")
            assert not result.ok, method


class TestDeductiveAgreement:
    @pytest.mark.parametrize("method", DEDUCTIVE_METHODS)
    @pytest.mark.parametrize(
        "update, expected_ok",
        [
            # student(joe): induced enrolled(joe, cs); joe misses ddb.
            ("student(joe)", False),
            # jack-like student who attends would be fine — simulate by
            # a transaction below; single inserts of attends are safe.
            ("attends(jill, logic)", True),
            # Deleting attends(jack, ddb) violates via derived enrolled.
            ("not attends(jack, ddb)", False),
            ("not student(jack)", True),
        ],
    )
    def test_methods_agree(self, method, update, expected_ok):
        db, checker = make_checker(UNIVERSITY)
        result = getattr(checker, method)(update)
        assert result.ok is expected_ok, f"{method} on {update}: {result}"

    def test_nicolas_misses_induced_violation(self):
        # Ablation: Proposition 1 alone is incomplete in deductive
        # databases. The constraint below mentions only the *derived*
        # relation, so the relational method sees no relevant constraint
        # for the base update and misses the induced violation.
        source = """
        enrolled(X, cs) :- student(X).
        forall X: enrolled(X, cs) -> attends(X, ddb).
        """
        db, checker = make_checker(source)
        nicolas = checker.check_nicolas("student(joe)")
        full = checker.check_full("student(joe)")
        bdm = checker.check_bdm("student(joe)")
        assert nicolas.ok
        assert not full.ok
        assert not bdm.ok

    def test_transaction_fixes_violation(self):
        db, checker = make_checker(UNIVERSITY)
        transaction = Transaction(["student(joe)", "attends(joe, ddb)"])
        for method in DEDUCTIVE_METHODS + ["check_full"]:
            result = getattr(checker, method)(transaction)
            assert result.ok, method

    def test_recursive_rules_supported(self):
        source = """
        par(a, b). par(b, c).
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
        forall X, Y: anc(X, Y) -> not evil(Y).
        """
        db, checker = make_checker(source)
        db.apply_update("evil(d)")
        # Linking d under c makes anc(a, d) true — violating via the
        # recursively induced updates.
        for method in DEDUCTIVE_METHODS + ["check_full"]:
            result = getattr(checker, method)("par(c, d)")
            assert not result.ok, method

    def test_deletion_cascade_detected(self):
        source = """
        leads(ann, sales). department(sales). employee(ann).
        member(X, Y) :- leads(X, Y).
        forall X: employee(X) -> exists Y: member(X, Y).
        """
        db, checker = make_checker(source)
        for method in DEDUCTIVE_METHODS + ["check_full"]:
            result = getattr(checker, method)("not leads(ann, sales)")
            assert not result.ok, method


class TestPaperSection32Scenario:
    """The student/enrolled/attends walk-through of Section 3.2."""

    SOURCE = """
    attends(jack, ddb).
    enrolled(X, cs) :- student(X).
    forall X: student(X) -> (not enrolled(X, cs)) or attends(X, ddb).
    """

    def test_update_studentjack_satisfied(self):
        db, checker = make_checker(self.SOURCE)
        result = checker.check_bdm("student(jack)")
        assert result.ok

    def test_update_studentjoe_violated(self):
        db, checker = make_checker(self.SOURCE)
        result = checker.check_bdm("student(joe)")
        assert not result.ok
        assert result.violations[0].constraint_id == "c1"

    def test_two_simplified_instances_arise(self):
        # S1 (from student(jack)) and S2 (from induced enrolled(jack,cs))
        # both guard the check; the shared subquery attends(jack, ddb)
        # is deduplicated by the shared-evaluation engine.
        db, checker = make_checker(self.SOURCE)
        compiled = checker.compile([parse_literal("student(jack)")])
        assert len(compiled.update_constraints) == 2

    def test_update_constraint_free_of_fact_access(self):
        # Compilation must succeed on an empty fact base.
        db = DeductiveDatabase.from_source(
            """
            enrolled(X, cs) :- student(X).
            forall X: student(X) -> (not enrolled(X, cs)) or attends(X, ddb).
            """
        )
        checker = IntegrityChecker(db)
        compiled = checker.compile([parse_literal("student(jack)")])
        assert len(compiled.potential) >= 2  # student(jack), enrolled(jack, cs)


class TestZeroFactAccess:
    def test_unconstrained_predicate_no_lookups(self):
        # Section 3.2, first drawback: update p(a,b) under rule
        # r(X) :- q(X, Y), p(Y, Z) with r unconstrained must not touch
        # the facts at all under the two-phase method.
        source = """
        q(k1, a). q(k2, a). q(k3, a).
        r(X) :- q(X, Y), p(Y, Z).
        forall X: s(X) -> t(X).
        """
        db, checker = make_checker(source)
        result = checker.check_bdm("p(a, b)")
        assert result.ok
        assert result.stats["update_constraints"] == 0
        assert result.stats["lookups"] == 0

    def test_interleaved_pays_for_irrelevant_induced_updates(self):
        source = """
        q(k1, a). q(k2, a). q(k3, a).
        r(X) :- q(X, Y), p(Y, Z).
        forall X: s(X) -> t(X).
        """
        db, checker = make_checker(source)
        bdm = checker.check_bdm("p(a, b)")
        interleaved = checker.check_interleaved("p(a, b)")
        assert interleaved.ok
        # The interleaved method computed the r-updates; bdm did not.
        assert interleaved.stats["induced_updates"] > 0
        assert bdm.stats["induced_updates"] == 0
        assert interleaved.stats["lookups"] > bdm.stats["lookups"]


class TestLloydCost:
    def test_lloyd_enumerates_unchanged_instances(self):
        # The rule head has a join variable, so the potential update
        # r(X) stays open. 20 pre-existing r facts: the new-guard
        # enumerates all 21, the delta guard only the 1 changed one.
        facts = "\n".join(
            f"q(k{i}, c). ok(k{i})." for i in range(20)
        )
        source = f"""
        {facts}
        p(c, d). q(k99, a). ok(k99).
        r(X) :- q(X, Y), p(Y, Z).
        forall X: r(X) -> ok(X).
        """
        db, checker = make_checker(source)
        bdm = checker.check_bdm("p(a, b)")
        lloyd = checker.check_lloyd("p(a, b)")
        assert bdm.ok and lloyd.ok
        assert lloyd.stats["guard_answers"] >= 21
        assert bdm.stats["instances_evaluated"] == 1

    def test_lloyd_negative_trigger_degenerates_to_recheck(self):
        source = """
        c(a, b). b(a).
        member(X, Y) :- leads(X, Y).
        forall X, Y: c(X, Y) -> b(X).
        """
        db, checker = make_checker(source)
        lloyd = checker.check_lloyd("not b(a)")
        full = checker.check_full("not b(a)")
        assert lloyd.ok is full.ok is False


class TestTransactions:
    def test_net_effect_cancellation(self):
        db, checker = make_checker("p(a). forall X: p(X) -> q(X).")
        # Insert then delete p(c): net no-op.
        result = checker.check_bdm(Transaction(["p(c)", "not p(c)"]))
        assert result.ok

    def test_delete_then_insert(self):
        db, checker = make_checker(
            "p(a). q(a). forall X: p(X) -> q(X). exists X: p(X)."
        )
        result = checker.check_bdm(Transaction(["not p(a)", "p(a)"]))
        assert result.ok

    def test_compound_transaction_violation(self):
        db, checker = make_checker(
            "p(a). q(a). forall X: p(X) -> q(X)."
        )
        result = checker.check_bdm(Transaction(["p(b)", "q(b)", "p(c)"]))
        assert not result.ok

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_methods_agree_on_transactions(self, method):
        db, checker = make_checker(UNIVERSITY)
        transaction = Transaction(
            ["student(joe)", "attends(joe, ddb)", "not attends(jill, ddb)"]
        )
        result = getattr(checker, method)(transaction)
        # jill is a student, enrolled via the rule, loses ddb: violation.
        assert not result.ok, method


class TestCheckResultApi:
    def test_result_truthiness(self):
        db, checker = make_checker("p(a). forall X: p(X) -> q(X).")
        assert not checker.check_bdm("p(b)")
        assert checker.check_bdm("q(b)")

    def test_violated_constraint_ids(self):
        db, checker = make_checker(
            "forall X: p(X) -> q(X). forall X: p(X) -> r(X)."
        )
        result = checker.check_bdm("p(a)")
        assert result.violated_constraint_ids() == {"c1", "c2"}

    def test_check_alias(self):
        db, checker = make_checker("forall X: p(X) -> q(X).")
        assert checker.check("p(a)").ok is checker.check_bdm("p(a)").ok

    def test_nonground_update_rejected(self):
        db, checker = make_checker("forall X: p(X) -> q(X).")
        with pytest.raises(ValueError):
            checker.check_bdm(parse_literal("p(X)"))

"""Unit tests for transactions and net-effect normalization."""

import pytest

from repro.integrity.transactions import Transaction, net_effect
from repro.logic.parser import parse_literal


def lits(*texts):
    return [parse_literal(t) for t in texts]


class TestNetEffect:
    def test_empty(self):
        assert net_effect([]) == []

    def test_single(self):
        assert net_effect(lits("p(a)")) == lits("p(a)")

    def test_last_wins(self):
        assert net_effect(lits("p(a)", "not p(a)")) == lits("not p(a)")
        assert net_effect(lits("not p(a)", "p(a)")) == lits("p(a)")

    def test_duplicates_collapse(self):
        assert net_effect(lits("p(a)", "p(a)")) == lits("p(a)")

    def test_order_preserved_per_first_occurrence(self):
        out = net_effect(lits("p(a)", "q(b)", "not p(a)"))
        assert out == lits("not p(a)", "q(b)")

    def test_distinct_atoms_independent(self):
        out = net_effect(lits("p(a)", "p(b)", "not p(a)"))
        assert parse_literal("not p(a)") in out
        assert parse_literal("p(b)") in out


class TestTransaction:
    def test_parses_strings(self):
        transaction = Transaction(["p(a)", "not q(b)"])
        assert len(transaction) == 2
        assert transaction.updates[1] == parse_literal("not q(b)")

    def test_accepts_literals(self):
        transaction = Transaction(lits("p(a)"))
        assert transaction.updates == tuple(lits("p(a)"))

    def test_rejects_nonground(self):
        with pytest.raises(ValueError):
            Transaction(["p(X)"])

    def test_net(self):
        transaction = Transaction(["p(a)", "not p(a)", "q(b)"])
        assert transaction.net() == lits("not p(a)", "q(b)")

    def test_iteration(self):
        transaction = Transaction(["p(a)", "q(b)"])
        assert list(transaction) == lits("p(a)", "q(b)")

    def test_repr(self):
        assert "p(a)" in repr(Transaction(["p(a)"]))

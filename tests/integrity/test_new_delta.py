"""Unit tests for the ``new`` and ``delta`` meta-interpreters."""


from repro.datalog.database import DeductiveDatabase
from repro.integrity.delta_eval import DeltaEvaluator
from repro.integrity.new_eval import NewEvaluator
from repro.logic.normalize import normalize_constraint
from repro.logic.parser import parse_fact, parse_formula, parse_literal


def db_from(text):
    return DeductiveDatabase.from_source(text)


class TestNewEvaluator:
    def test_insertion_visible(self):
        db = db_from("p(a).")
        new = NewEvaluator(db, parse_literal("p(b)"))
        assert new.holds(parse_fact("p(b)"))
        assert not db.holds("p(b)")

    def test_deletion_invisible(self):
        db = db_from("p(a).")
        new = NewEvaluator(db, parse_literal("not p(a)"))
        assert not new.holds(parse_fact("p(a)"))
        assert db.holds("p(a)")

    def test_derived_consequences(self):
        db = db_from("member(X, Y) :- leads(X, Y).")
        new = NewEvaluator(db, parse_literal("leads(ann, sales)"))
        assert new.holds(parse_fact("member(ann, sales)"))

    def test_recursive_consequences(self):
        db = db_from(
            """
            par(a, b). par(b, c).
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
            """
        )
        new = NewEvaluator(db, parse_literal("par(c, d)"))
        assert new.holds(parse_fact("anc(a, d)"))
        assert not db.holds("anc(a, d)")

    def test_formula_evaluation(self):
        db = db_from("student(jack).")
        new = NewEvaluator(db, parse_literal("attends(jack, ddb)"))
        formula = normalize_constraint(
            parse_formula("forall X: student(X) -> attends(X, ddb)")
        )
        assert new.evaluate(formula)

    def test_transaction_evaluation(self):
        db = db_from("p(a). q(a).")
        new = NewEvaluator(
            db, [parse_literal("not p(a)"), parse_literal("p(b)")]
        )
        assert not new.holds(parse_fact("p(a)"))
        assert new.holds(parse_fact("p(b)"))
        assert new.holds(parse_fact("q(a)"))


class TestDeltaBaseCases:
    def test_effective_insertion(self):
        db = db_from("p(a).")
        delta = DeltaEvaluator(db, parse_literal("p(b)"))
        assert delta.induced_updates() == [parse_literal("p(b)")]

    def test_ineffective_insertion(self):
        db = db_from("p(a).")
        delta = DeltaEvaluator(db, parse_literal("p(a)"))
        assert delta.induced_updates() == []

    def test_insertion_of_already_derivable_fact(self):
        # p(a) derivable via a rule: explicitly inserting it changes
        # nothing at the canonical-model level.
        db = db_from("base(a). p(X) :- base(X).")
        delta = DeltaEvaluator(db, parse_literal("p(a)"))
        assert delta.induced_updates() == []

    def test_effective_deletion(self):
        db = db_from("p(a).")
        delta = DeltaEvaluator(db, parse_literal("not p(a)"))
        assert delta.induced_updates() == [parse_literal("not p(a)")]

    def test_ineffective_deletion(self):
        db = db_from("p(a).")
        delta = DeltaEvaluator(db, parse_literal("not p(b)"))
        assert delta.induced_updates() == []

    def test_deletion_of_rederivable_fact(self):
        # Deleting the explicit p(a) while a rule still derives it: no
        # truth change.
        db = db_from("p(a). base(a). p(X) :- base(X).")
        delta = DeltaEvaluator(db, parse_literal("not p(a)"))
        assert delta.induced_updates() == []


class TestDeltaPropagation:
    def test_single_step_insertion(self):
        db = db_from("member(X, Y) :- leads(X, Y).")
        delta = DeltaEvaluator(db, parse_literal("leads(ann, sales)"))
        induced = set(delta.induced_updates())
        assert parse_literal("member(ann, sales)") in induced

    def test_join_rule_needs_partner_facts(self):
        db = db_from("r(X) :- q(X, Y), p(Y, Z).")
        delta = DeltaEvaluator(db, parse_literal("p(a, b)"))
        # No q facts: r is a potential but not an actual induced update.
        assert set(delta.induced_updates()) == {parse_literal("p(a, b)")}

    def test_join_rule_with_partner_facts(self):
        db = db_from("q(k, a). r(X) :- q(X, Y), p(Y, Z).")
        delta = DeltaEvaluator(db, parse_literal("p(a, b)"))
        assert parse_literal("r(k)") in set(delta.induced_updates())

    def test_already_true_head_not_induced(self):
        db = db_from(
            "q(k, a). q(k, c). p(c, d). r(X) :- q(X, Y), p(Y, Z)."
        )
        # r(k) already derivable via q(k,c), p(c,d).
        delta = DeltaEvaluator(db, parse_literal("p(a, b)"))
        assert parse_literal("r(k)") not in set(delta.induced_updates())

    def test_recursive_propagation(self):
        db = db_from(
            """
            par(a, b). par(b, c).
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
            """
        )
        delta = DeltaEvaluator(db, parse_literal("par(c, d)"))
        induced = set(delta.induced_updates())
        assert parse_literal("anc(c, d)") in induced
        assert parse_literal("anc(b, d)") in induced
        assert parse_literal("anc(a, d)") in induced

    def test_deletion_cascades(self):
        db = db_from(
            "leads(ann, sales). member(X, Y) :- leads(X, Y)."
        )
        delta = DeltaEvaluator(db, parse_literal("not leads(ann, sales)"))
        assert parse_literal("not member(ann, sales)") in set(
            delta.induced_updates()
        )

    def test_negation_flip_insertion_retracts(self):
        db = db_from(
            """
            employee(a). assigned(a, p1).
            idle(X) :- employee(X), not busy(X).
            busy(X) :- assigned(X, Y), active(Y).
            """
        )
        # Activating p1 makes a busy, retracting idle(a).
        delta = DeltaEvaluator(db, parse_literal("active(p1)"))
        induced = set(delta.induced_updates())
        assert parse_literal("busy(a)") in induced
        assert parse_literal("not idle(a)") in induced

    def test_negation_flip_deletion_asserts(self):
        db = db_from(
            """
            employee(a). assigned(a, p1). active(p1).
            idle(X) :- employee(X), not busy(X).
            busy(X) :- assigned(X, Y), active(Y).
            """
        )
        delta = DeltaEvaluator(db, parse_literal("not active(p1)"))
        induced = set(delta.induced_updates())
        assert parse_literal("not busy(a)") in induced
        assert parse_literal("idle(a)") in induced

    def test_answers_pattern_matching(self):
        db = db_from("member(X, Y) :- leads(X, Y).")
        delta = DeltaEvaluator(db, parse_literal("leads(ann, sales)"))
        from repro.logic.parser import parse_atom
        from repro.logic.formulas import Literal
        pattern = Literal(parse_atom("member(W1, W2)"), True)
        answers = list(delta.answers(pattern))
        assert len(answers) == 1

    def test_holds_ground(self):
        db = db_from("member(X, Y) :- leads(X, Y).")
        delta = DeltaEvaluator(db, parse_literal("leads(ann, sales)"))
        assert delta.holds(parse_literal("member(ann, sales)"))
        assert not delta.holds(parse_literal("member(bob, sales)"))


class TestPaperDeltaGap:
    """The counterexample to the paper's Prolog delta (which evaluates
    the rest of a deletion candidate's body in the *new* state): with
        q(X) :- p(X)        b(X) :- p(X), q(X)
    deleting p(a) flips both body literals of b's only derivation, so a
    new-state rest evaluation finds no support along either dependency
    edge. Our old-state evaluation for deletions (delete–re-derive)
    catches it."""

    def test_two_literal_flip_deletion_found(self):
        db = db_from(
            """
            p(a).
            q(X) :- p(X).
            b(X) :- p(X), q(X).
            """
        )
        delta = DeltaEvaluator(db, parse_literal("not p(a)"))
        induced = set(delta.induced_updates())
        assert parse_literal("not q(a)") in induced
        assert parse_literal("not b(a)") in induced


class TestRestrictedPropagation:
    def test_restriction_prunes_unreachable_results(self):
        db = db_from(
            """
            q(k, a).
            r(X) :- q(X, Y), p(Y, Z).
            s(X) :- p(X, Y).
            """
        )
        # Only demand s-insertions: the r branch must not be explored.
        delta = DeltaEvaluator(
            db,
            parse_literal("p(a, b)"),
            restrict_to={("s", True), ("p", True)},
        )
        induced = set(delta.induced_updates())
        assert parse_literal("s(a)") in induced
        assert all(l.atom.pred != "r" for l in induced)

    def test_restriction_keeps_transit_nodes(self):
        db = db_from(
            """
            a(k).
            b(X) :- a(X).
            c(X) :- b(X).
            """
        )
        index_free = DeltaEvaluator(
            db,
            parse_literal("a(m)"),
            restrict_to={("a", True), ("b", True), ("c", True)},
        )
        assert parse_literal("c(m)") in set(index_free.induced_updates())

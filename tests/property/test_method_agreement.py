"""The central reproduction property (Propositions 1–3): on databases
that satisfy their constraints, every checking method agrees with the
full re-check — for random databases, constraint sets and updates.

``check_nicolas`` joins the agreement only when the program is empty
(the relational case it was designed for).
"""

from hypothesis import assume, given, settings
import hypothesis.strategies as st

from repro.datalog.database import DeductiveDatabase
from repro.datalog.program import Program, Rule
from repro.integrity.checker import IntegrityChecker
from repro.logic.formulas import Atom, Literal
from repro.logic.parser import parse_rule

from tests.property.strategies import CONSTANTS, guarded_constraints

RULE_POOL = [
    "tc(X, Y) :- r(X, Y)",
    "tc(X, Y) :- r(X, Z), tc(Z, Y)",
    "q(X) :- p(X), marked(X)",
    "node(X) :- r(X, Y)",
    "node(Y) :- r(X, Y)",
]


@st.composite
def scenario(draw, with_rules: bool):
    if with_rules:
        texts = draw(
            st.lists(
                st.sampled_from(RULE_POOL),
                min_size=0,
                max_size=4,
                unique=True,
            )
        )
        program = Program([Rule.from_parsed(parse_rule(t)) for t in texts])
    else:
        program = Program()
    db = DeductiveDatabase(program=program)
    n = draw(st.integers(min_value=0, max_value=7))
    for _ in range(n):
        pred = draw(st.sampled_from(["p", "q", "r", "marked"]))
        if pred == "r":
            args = (
                draw(st.sampled_from(CONSTANTS)),
                draw(st.sampled_from(CONSTANTS)),
            )
        else:
            args = (draw(st.sampled_from(CONSTANTS)),)
        db.facts.add(Atom(pred, args))
    n_constraints = draw(st.integers(min_value=1, max_value=3))
    for _ in range(n_constraints):
        formula = draw(guarded_constraints())
        try:
            db.add_constraint(formula)
        except Exception:
            assume(False)
    # The propositions' precondition: D satisfies its constraints.
    assume(db.all_constraints_satisfied())
    pred = draw(st.sampled_from(["p", "q", "r", "marked"]))
    if pred == "r":
        args = (
            draw(st.sampled_from(CONSTANTS)),
            draw(st.sampled_from(CONSTANTS)),
        )
    else:
        args = (draw(st.sampled_from(CONSTANTS)),)
    update = Literal(Atom(pred, args), draw(st.booleans()))
    return db, update


class TestRelationalAgreement:
    @given(scenario(with_rules=False))
    @settings(max_examples=80, deadline=None)
    def test_all_methods_agree_without_rules(self, case):
        db, update = case
        checker = IntegrityChecker(db)
        expected = checker.check_full(update).ok
        assert checker.check_nicolas(update).ok is expected
        assert checker.check_bdm(update).ok is expected
        assert checker.check_interleaved(update).ok is expected
        assert checker.check_lloyd(update).ok is expected


class TestDeductiveAgreement:
    @given(scenario(with_rules=True))
    @settings(max_examples=80, deadline=None)
    def test_deductive_methods_agree_with_full(self, case):
        db, update = case
        checker = IntegrityChecker(db)
        expected = checker.check_full(update).ok
        assert checker.check_bdm(update).ok is expected
        assert checker.check_interleaved(update).ok is expected
        assert checker.check_lloyd(update).ok is expected

    @given(scenario(with_rules=True))
    @settings(max_examples=40, deadline=None)
    def test_bdm_violations_subset_of_constraint_ids(self, case):
        db, update = case
        checker = IntegrityChecker(db)
        result = checker.check_bdm(update)
        ids = {c.id for c in db.constraints}
        assert result.violated_constraint_ids() <= ids

    @given(scenario(with_rules=True), st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_transaction_agreement(self, case, extra):
        db, update = case
        updates = [update]
        # Duplicate / complement churn exercises the net-effect logic.
        if extra >= 1:
            updates.append(update.complement())
        if extra >= 2:
            updates.append(update)
        checker = IntegrityChecker(db)
        expected = checker.check_full(updates).ok
        assert checker.check_bdm(updates).ok is expected

"""Shared hypothesis strategies for the property-based test suite.

Everything is kept deliberately small (few predicates, few constants,
short formulas): the properties compare against brute-force oracles
whose cost is exponential in the signature.
"""

from __future__ import annotations

import hypothesis.strategies as st

from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    Forall,
    Iff,
    Implies,
    Literal,
    Not,
    Or,
)
from repro.logic.terms import Constant, Variable

CONSTANTS = [Constant(name) for name in ("a", "b", "c")]
VARIABLES = [Variable(name) for name in ("X", "Y", "Z")]
PREDICATES = [("p", 1), ("q", 1), ("r", 2)]


def constants(max_index: int = 3):
    return st.sampled_from(CONSTANTS[:max_index])


def variables():
    return st.sampled_from(VARIABLES)


def terms(allow_variables: bool = True):
    if allow_variables:
        return st.one_of(constants(), variables())
    return constants()


@st.composite
def atoms(draw, allow_variables: bool = True, predicates=None):
    pred, arity = draw(st.sampled_from(predicates or PREDICATES))
    args = tuple(
        draw(terms(allow_variables)) for _ in range(arity)
    )
    return Atom(pred, args)


@st.composite
def ground_atoms(draw):
    return draw(atoms(allow_variables=False))


@st.composite
def literals(draw, allow_variables: bool = True):
    return Literal(
        draw(atoms(allow_variables)), draw(st.booleans())
    )


@st.composite
def ground_literals(draw):
    return Literal(draw(ground_atoms()), draw(st.booleans()))


@st.composite
def quantifier_free_formulas(draw, depth: int = 2):
    """Ground quantifier-free formulas over the fixed signature."""
    if depth <= 0:
        return Literal(draw(ground_atoms()), draw(st.booleans()))
    kind = draw(st.sampled_from(["lit", "not", "and", "or", "implies", "iff"]))
    if kind == "lit":
        return Literal(draw(ground_atoms()), draw(st.booleans()))
    if kind == "not":
        return Not(draw(quantifier_free_formulas(depth=depth - 1)))
    left = draw(quantifier_free_formulas(depth=depth - 1))
    right = draw(quantifier_free_formulas(depth=depth - 1))
    if kind == "and":
        return And.make([left, right])
    if kind == "or":
        return Or.make([left, right])
    if kind == "implies":
        return Implies(left, right)
    return Iff(left, right)


@st.composite
def guarded_constraints(draw):
    """Closed, domain-independent constraints in the guarded patterns
    the paper's constraints use (always normalizable)."""
    shape = draw(
        st.sampled_from(
            ["univ_impl", "univ_neg", "exists", "univ_exists", "ground"]
        )
    )
    x, y = Variable("X"), Variable("Y")
    p = draw(st.sampled_from(["p", "q"]))
    q = draw(st.sampled_from(["p", "q"]))
    if shape == "univ_impl":
        return Forall(
            [x], None, Implies(Literal(Atom(p, (x,))), Literal(Atom(q, (x,))))
        )
    if shape == "univ_neg":
        return Forall(
            [x],
            None,
            Implies(
                Literal(Atom(p, (x,))), Literal(Atom(q, (x,)), False)
            ),
        )
    if shape == "exists":
        return Exists([x], None, Literal(Atom(p, (x,))))
    if shape == "univ_exists":
        return Forall(
            [x],
            None,
            Implies(
                Literal(Atom(p, (x,))),
                Exists(
                    [y],
                    None,
                    And.make(
                        [
                            Literal(Atom(q, (y,))),
                            Literal(Atom("r", (x, y))),
                        ]
                    ),
                ),
            ),
        )
    constant = draw(constants())
    return Implies(
        Literal(Atom(p, (constant,))), Literal(Atom(q, (constant,)))
    )


@st.composite
def fact_sets(draw, max_size: int = 8):
    return draw(st.lists(ground_atoms(), max_size=max_size, unique=True))

"""Properties of the meta-interpreters.

* ``new(U, F)`` must agree with evaluating F over the materialized
  updated database.
* ``delta(U, ·)`` must enumerate exactly the symmetric difference of
  the canonical models of D and U(D).
"""

from hypothesis import given, settings
import hypothesis.strategies as st

from repro.datalog.bottomup import compute_model
from repro.datalog.database import DeductiveDatabase
from repro.datalog.program import Program, Rule
from repro.integrity.delta_eval import DeltaEvaluator
from repro.integrity.new_eval import NewEvaluator
from repro.logic.formulas import Atom, Literal
from repro.logic.parser import parse_rule

from tests.property.strategies import CONSTANTS

RULE_POOL = [
    "tc(X, Y) :- r(X, Y)",
    "tc(X, Y) :- r(X, Z), tc(Z, Y)",
    "node(X) :- r(X, Y)",
    "node(Y) :- r(X, Y)",
    "busy(X) :- p(X), q(X)",
    "idle(X) :- node(X), not busy(X)",
]


@st.composite
def databases(draw):
    texts = draw(
        st.lists(
            st.sampled_from(RULE_POOL), min_size=0, max_size=5, unique=True
        )
    )
    db = DeductiveDatabase(program=Program(
        [Rule.from_parsed(parse_rule(t)) for t in texts]
    ))
    n = draw(st.integers(min_value=0, max_value=7))
    for _ in range(n):
        pred = draw(st.sampled_from(["p", "q", "r"]))
        if pred == "r":
            args = (
                draw(st.sampled_from(CONSTANTS)),
                draw(st.sampled_from(CONSTANTS)),
            )
        else:
            args = (draw(st.sampled_from(CONSTANTS)),)
        db.facts.add(Atom(pred, args))
    return db


@st.composite
def updates(draw):
    pred = draw(st.sampled_from(["p", "q", "r"]))
    if pred == "r":
        args = (
            draw(st.sampled_from(CONSTANTS)),
            draw(st.sampled_from(CONSTANTS)),
        )
    else:
        args = (draw(st.sampled_from(CONSTANTS)),)
    return Literal(Atom(pred, args), draw(st.booleans()))


def materialized_diff(db, update):
    """Ground truth: canonical(U(D)) vs canonical(D), as literals."""
    before = compute_model(db.facts.copy(), db.program)
    after_store = db.updated(update).facts.copy()
    after = compute_model(after_store, db.program)
    inserts = {Literal(a, True) for a in after if not before.contains(a)}
    deletes = {Literal(a, False) for a in before if not after.contains(a)}
    return inserts | deletes


class TestNewEvaluator:
    @given(databases(), updates())
    @settings(max_examples=80, deadline=None)
    def test_new_agrees_with_materialized_update(self, db, update):
        new = NewEvaluator(db, update)
        after = compute_model(db.updated(update).facts.copy(), db.program)
        # Check every atom of the combined space.
        atoms = set(after) | set(compute_model(db.facts.copy(), db.program))
        atoms.add(update.atom)
        for atom in atoms:
            assert new.holds(atom) == after.contains(atom), atom


class TestDeltaEvaluator:
    @given(databases(), updates())
    @settings(max_examples=80, deadline=None)
    def test_delta_is_exact_model_difference(self, db, update):
        delta = DeltaEvaluator(db, update)
        assert set(delta.induced_updates()) == materialized_diff(db, update)

    @given(databases(), updates())
    @settings(max_examples=40, deadline=None)
    def test_delta_of_noop_update_is_empty(self, db, update):
        # Make the update a definite no-op, then delta must be empty.
        if update.positive:
            db.facts.add(update.atom)
        else:
            db.facts.remove(update.atom)
        db._bump()
        # Deleting a fact still derivable, or inserting one already
        # derivable, is also a no-op at the model level — covered by the
        # exactness test; here we pin the explicit Definition 1 no-ops.
        delta = DeltaEvaluator(db, update)
        assert set(delta.induced_updates()) == materialized_diff(db, update)

"""Property: all three evaluation strategies agree on random programs.

Semi-naive bottom-up is the reference; naive bottom-up and the tabled
top-down evaluator must produce identical canonical models / answers,
including on recursive programs with stratified negation.
"""

from hypothesis import given, settings
import hypothesis.strategies as st

from repro.datalog.bottomup import compute_model, compute_model_naive
from repro.datalog.facts import FactStore
from repro.datalog.program import Program, Rule
from repro.datalog.topdown import TabledEvaluator
from repro.logic.formulas import Atom
from repro.logic.parser import parse_rule
from repro.logic.terms import Variable

from tests.property.strategies import CONSTANTS

# A pool of safe, stratified rule shapes over the fixed signature;
# programs are random subsets. (Random arbitrary rules would mostly be
# unsafe or unstratified — the pool keeps every draw meaningful.)
RULE_POOL = [
    "tc(X, Y) :- r(X, Y)",
    "tc(X, Y) :- r(X, Z), tc(Z, Y)",
    "sym(X, Y) :- r(X, Y)",
    "sym(X, Y) :- r(Y, X)",
    "node(X) :- r(X, Y)",
    "node(Y) :- r(X, Y)",
    "both(X) :- p(X), q(X)",
    "either(X) :- p(X)",
    "either(X) :- q(X)",
    "lonely(X) :- node(X), not both(X)",
    "source(X) :- node(X), not target(X)",
    "target(Y) :- r(X, Y)",
]


@st.composite
def programs(draw):
    texts = draw(
        st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=6, unique=True)
    )
    try:
        return Program([Rule.from_parsed(parse_rule(t)) for t in texts])
    except Exception:
        # A draw that happens to be unstratifiable is discarded.
        from hypothesis import assume

        assume(False)


@st.composite
def edbs(draw):
    facts = FactStore()
    n = draw(st.integers(min_value=0, max_value=8))
    for _ in range(n):
        pred = draw(st.sampled_from(["p", "q", "r"]))
        if pred == "r":
            args = (
                draw(st.sampled_from(CONSTANTS)),
                draw(st.sampled_from(CONSTANTS)),
            )
        else:
            args = (draw(st.sampled_from(CONSTANTS)),)
        facts.add(Atom(pred, args))
    return facts


class TestEngineAgreement:
    @given(programs(), edbs())
    @settings(max_examples=60, deadline=None)
    def test_semi_naive_equals_naive(self, program, edb):
        semi = compute_model(edb, program)
        naive = compute_model_naive(edb, program)
        assert set(semi) == set(naive)

    @given(programs(), edbs())
    @settings(max_examples=60, deadline=None)
    def test_topdown_agrees_per_predicate(self, program, edb):
        model = compute_model(edb, program)
        evaluator = TabledEvaluator(edb, program)
        X, Y = Variable("X"), Variable("Y")
        for pred, arity in [
            ("tc", 2),
            ("sym", 2),
            ("node", 1),
            ("both", 1),
            ("either", 1),
            ("lonely", 1),
            ("source", 1),
        ]:
            pattern = Atom(pred, (X, Y)[:arity])
            expected = set(model.match(pattern))
            assert set(evaluator.solve(pattern)) == expected, pred

    @given(programs(), edbs())
    @settings(max_examples=40, deadline=None)
    def test_model_contains_edb(self, program, edb):
        model = compute_model(edb, program)
        for fact in edb:
            assert model.contains(fact)

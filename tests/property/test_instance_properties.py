"""The Definition 3 correctness property, as a hypothesis property.

For a constraint C satisfied in D and any update U (Proposition 1's
setting — no rules): C is satisfied in U(D) **iff** every simplified
instance of C w.r.t. U is satisfied in U(D). Checking the instances is
both sound and complete — the relational core everything else builds on.
"""

from hypothesis import assume, given, settings
import hypothesis.strategies as st

from repro.datalog.database import DeductiveDatabase
from repro.integrity.instances import simplified_instances
from repro.logic.formulas import Atom, Literal

from tests.property.strategies import (
    CONSTANTS,
    fact_sets,
    guarded_constraints,
)


@st.composite
def update_literals(draw):
    pred = draw(st.sampled_from(["p", "q", "r"]))
    arity = 2 if pred == "r" else 1
    args = tuple(draw(st.sampled_from(CONSTANTS)) for _ in range(arity))
    return Literal(Atom(pred, args), draw(st.booleans()))


@st.composite
def satisfied_scenario(draw):
    db = DeductiveDatabase()
    for fact in draw(fact_sets()):
        db.facts.add(fact)
    try:
        constraint = db.add_constraint(draw(guarded_constraints()))
    except Exception:
        assume(False)
    assume(db.all_constraints_satisfied())
    return db, constraint, draw(update_literals())


class TestDefinition3:
    @given(satisfied_scenario())
    @settings(max_examples=150, deadline=None)
    def test_instances_decide_constraint_in_updated_state(self, case):
        db, constraint, update = case
        updated = db.updated(update)
        engine = updated.engine()
        constraint_holds = engine.evaluate(constraint.formula)
        instances = simplified_instances(constraint, update)
        instances_hold = all(
            engine.evaluate(i.formula) for i in instances
        )
        assert instances_hold == constraint_holds

    @given(satisfied_scenario())
    @settings(max_examples=100, deadline=None)
    def test_irrelevant_updates_never_violate(self, case):
        db, constraint, update = case
        if simplified_instances(constraint, update):
            assume(False)  # only the no-relevant-instance cases here
        updated = db.updated(update)
        assert updated.engine().evaluate(constraint.formula)

    @given(satisfied_scenario())
    @settings(max_examples=100, deadline=None)
    def test_instances_are_closed_for_ground_updates(self, case):
        _, constraint, update = case
        for instance in simplified_instances(constraint, update):
            assert instance.formula.is_closed()

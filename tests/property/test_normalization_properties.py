"""Property: normalization preserves semantics.

Quantifier-free case: brute-force truth-table equivalence over random
fact sets. Guarded-constraint case: the normalized restricted form must
agree with a direct (unrestricted) semantic evaluation on random
databases.
"""

from hypothesis import given, settings

from repro.config import EngineConfig
from repro.datalog.facts import FactStore
from repro.datalog.program import Program
from repro.datalog.query import QueryEngine
from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseFormula,
    Forall,
    Iff,
    Implies,
    Literal,
    Not,
    Or,
    TrueFormula,
)
from repro.logic.normalize import normalize_constraint, to_nnf

from tests.property.strategies import (
    CONSTANTS,
    fact_sets,
    guarded_constraints,
    quantifier_free_formulas,
)

_EMPTY = Program()


def naive_eval(formula, facts, domain):
    """Reference semantics: direct recursive evaluation, quantifiers
    ranging over *domain* (active-domain semantics)."""
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, Literal):
        value = formula.atom in facts
        return value if formula.positive else not value
    if isinstance(formula, Atom):
        return formula in facts
    if isinstance(formula, Not):
        return not naive_eval(formula.child, facts, domain)
    if isinstance(formula, And):
        return all(naive_eval(c, facts, domain) for c in formula.children)
    if isinstance(formula, Or):
        return any(naive_eval(c, facts, domain) for c in formula.children)
    if isinstance(formula, Implies):
        return (not naive_eval(formula.antecedent, facts, domain)) or (
            naive_eval(formula.consequent, facts, domain)
        )
    if isinstance(formula, Iff):
        return naive_eval(formula.left, facts, domain) == naive_eval(
            formula.right, facts, domain
        )
    if isinstance(formula, (Exists, Forall)):
        from itertools import product

        from repro.logic.substitution import Substitution

        results = []
        for combo in product(domain, repeat=len(formula.variables_tuple)):
            binding = Substitution(
                dict(zip(formula.variables_tuple, combo))
            )
            body_parts = []
            if formula.restriction is not None:
                body_parts.extend(
                    Literal(a.substitute(binding))
                    for a in formula.restriction
                )
            matrix = formula.matrix.substitute(binding)
            if isinstance(formula, Exists):
                value = all(
                    naive_eval(p, facts, domain) for p in body_parts
                ) and naive_eval(matrix, facts, domain)
            else:
                value = (
                    not all(naive_eval(p, facts, domain) for p in body_parts)
                ) or naive_eval(matrix, facts, domain)
            results.append(value)
        if isinstance(formula, Exists):
            return any(results)
        return all(results) if results else True
    raise ValueError(f"unexpected node {formula!r}")


class TestQuantifierFree:
    @given(quantifier_free_formulas(), fact_sets())
    @settings(max_examples=200)
    def test_nnf_preserves_truth(self, formula, facts):
        store = set(facts)
        domain = list(CONSTANTS)
        assert naive_eval(to_nnf(formula), store, domain) == naive_eval(
            formula, store, domain
        )

    @given(quantifier_free_formulas(), fact_sets())
    @settings(max_examples=200)
    def test_normalize_preserves_truth(self, formula, facts):
        store = set(facts)
        domain = list(CONSTANTS)
        normalized = normalize_constraint(formula)
        assert naive_eval(normalized, store, domain) == naive_eval(
            formula, store, domain
        )


class TestGuardedConstraints:
    @given(guarded_constraints(), fact_sets())
    @settings(max_examples=200)
    def test_normalized_agrees_with_reference_semantics(
        self, formula, facts
    ):
        store = set(facts)
        # Reference: quantifiers over the full constant pool (domain
        # independence means the result cannot differ from active-domain
        # evaluation for these guarded shapes).
        domain = list(CONSTANTS)
        expected = naive_eval(formula, store, domain)
        normalized = normalize_constraint(formula)
        engine = QueryEngine(
            FactStore(facts), _EMPTY, config=EngineConfig(strategy="lazy")
        )
        assert engine.evaluate(normalized) == expected

    @given(guarded_constraints(), fact_sets())
    @settings(max_examples=100)
    def test_normalization_idempotent_semantics(self, formula, facts):
        store = set(facts)
        domain = list(CONSTANTS)
        once = normalize_constraint(formula)
        assert naive_eval(once, store, domain) == naive_eval(
            formula, store, domain
        )

"""Properties of the satisfiability checker against the brute-force
finite-model oracle, on random guarded constraint sets."""

from hypothesis import assume, given, settings
import hypothesis.strategies as st

from repro.datalog.database import DeductiveDatabase
from repro.satisfiability.bruteforce import find_finite_model, is_model
from repro.satisfiability.checker import SatisfiabilityChecker

from tests.property.strategies import guarded_constraints


@st.composite
def constraint_sets(draw):
    formulas = draw(
        st.lists(guarded_constraints(), min_size=1, max_size=4)
    )
    db = DeductiveDatabase()
    stored = []
    for formula in formulas:
        try:
            stored.append(db.add_constraint(formula))
        except Exception:
            assume(False)
    return stored


class TestSatisfiabilityAgainstBruteForce:
    @given(constraint_sets())
    @settings(max_examples=50, deadline=None)
    def test_verdict_matches_bounded_oracle(self, constraints):
        # The guarded shapes admit models within 2 extra constants when
        # they admit finite models at all; the oracle bound matches the
        # checker budget so verdicts must align.
        oracle_model = find_finite_model(constraints, max_domain_size=3)
        checker = SatisfiabilityChecker(list(constraints))
        result = checker.check(max_fresh_constants=3)
        if oracle_model is not None:
            assert result.satisfiable
        else:
            assert not result.satisfiable

    @given(constraint_sets())
    @settings(max_examples=50, deadline=None)
    def test_returned_model_is_a_model(self, constraints):
        checker = SatisfiabilityChecker(list(constraints))
        result = checker.check(max_fresh_constants=3)
        if result.satisfiable:
            assert is_model(result.model, checker.constraints)

    @given(constraint_sets())
    @settings(max_examples=30, deadline=None)
    def test_tableaux_sat_implies_checker_sat(self, constraints):
        # Fresh-only search is strictly weaker: whenever it finds a
        # model, the full checker must too.
        baseline = SatisfiabilityChecker(
            list(constraints), existential_reuse=False
        ).check(max_fresh_constants=3, deepening=False)
        if baseline.satisfiable:
            full = SatisfiabilityChecker(list(constraints)).check(
                max_fresh_constants=3
            )
            assert full.satisfiable

"""Property-based tests of the unification substrate."""

from hypothesis import given
import hypothesis.strategies as st

from repro.logic.substitution import Substitution
from repro.logic.unify import match, mgu, subsumes, unifiable, variant

from tests.property.strategies import atoms, ground_atoms


class TestMgu:
    @given(atoms(), atoms())
    def test_mgu_unifies(self, left, right):
        unifier = mgu(left, right)
        if unifier is not None:
            assert left.substitute(unifier) == right.substitute(unifier)

    @given(atoms(), atoms())
    def test_unifiability_symmetric(self, left, right):
        assert unifiable(left, right) == unifiable(right, left)

    @given(atoms())
    def test_self_unification_is_identity_modulo_vars(self, atom):
        unifier = mgu(atom, atom)
        assert unifier is not None
        assert atom.substitute(unifier) == atom

    @given(atoms(), ground_atoms())
    def test_mgu_with_ground_matches(self, pattern, ground):
        unifier = mgu(pattern, ground)
        binding = match(pattern, ground)
        assert (unifier is None) == (binding is None)
        if binding is not None:
            assert pattern.substitute(binding) == ground


class TestMatch:
    @given(atoms(), ground_atoms())
    def test_match_is_one_way(self, pattern, target):
        binding = match(pattern, target)
        if binding is not None:
            assert pattern.substitute(binding) == target
            # Only the pattern's variables are bound.
            assert binding.domain() <= pattern.variables()


class TestSubsumption:
    @given(atoms(), ground_atoms())
    def test_subsumption_reflexive(self, pattern, ground):
        assert subsumes(pattern, pattern)
        assert subsumes(ground, ground)

    @given(atoms(), atoms(), ground_atoms())
    def test_subsumption_transitive(self, a, b, c):
        if subsumes(a, b) and subsumes(b, c):
            assert subsumes(a, c)

    @given(atoms(), atoms())
    def test_mutual_subsumption_is_variance(self, left, right):
        if subsumes(left, right) and subsumes(right, left):
            assert variant(left, right)

    @given(atoms(), atoms())
    def test_variant_symmetric(self, left, right):
        assert variant(left, right) == variant(right, left)


class TestSubstitutionAlgebra:
    @given(atoms(), st.data())
    def test_compose_associative_on_application(self, atom, data):
        from repro.logic.terms import Constant, Variable

        s1 = Substitution({Variable("X"): Constant("a")})
        s2 = Substitution({Variable("Y"): Variable("X")})
        s3 = Substitution({Variable("Z"): Constant("b")})
        left = s1.compose(s2).compose(s3)
        right = s1.compose(s2.compose(s3))
        assert atom.substitute(left) == atom.substitute(right)

"""The batch execution model must be invisible except in cost.

``exec_mode="batch"`` (set-at-a-time hash joins over the composite
store indexes) and ``exec_mode="tuple"`` (the seed's one-binding-at-a-
time oracle) must produce identical answer sets, identical integrity
verdicts and identical DRed-maintained models — for Hypothesis-
generated programs and transactions and across the strategy/plan/
supplementary matrix (``lazy``/``magic`` × ``source``/``greedy`` ×
supplementary on/off: the supplementary-magic rewrite against its
classic non-supplementary oracle), on the relational, deductive and
orders workloads, negation and empty relations included.

The same holds one level down for the batch path's join algorithm:
``join_algo="wcoj"`` (the worst-case-optimal leapfrog triejoin) and
``join_algo="hash"`` (the pairwise pipeline) must agree cell-for-cell.
The rule pool includes cyclic bodies (``wedge``, ``fan``) so the
leapfrog actually runs, not just falls back.
"""

import warnings

from hypothesis import given, settings
import hypothesis.strategies as st

from repro.config import EngineConfig
from repro.datalog.database import DeductiveDatabase
from repro.datalog.facts import FactStore
from repro.datalog.incremental import MaintainedModel
from repro.datalog.magic import MagicFallbackWarning
from repro.datalog.program import Program, Rule
from repro.datalog.query import QueryEngine
from repro.integrity.checker import IntegrityChecker
from repro.integrity.transactions import Transaction
from repro.logic.formulas import Atom, Literal
from repro.logic.parser import parse_atom, parse_rule
from repro.workloads.deductive import ancestor_database, rule_chain_database
from repro.workloads.orders import OrdersWorkload
from repro.workloads.relational import RelationalWorkload

from tests.property.strategies import CONSTANTS

EXECS = ("batch", "tuple")
PLANS = ("source", "greedy")
STRATEGIES = ("lazy", "magic")
# Prefix sharing in the magic rewrite: on (the default) vs. the
# classic rewrite oracle. Inert for strategy="lazy" but swept across
# the whole matrix anyway — agreement must not depend on the cell.
SUPPLEMENTARY = (True, False)
# The two explicit join kernels. The tuple oracle ignores join_algo,
# so sweeping it there only re-runs identical cells; the batch legs
# get both kernels.
JOINS = ("hash", "wcoj")


def exec_join_cells():
    """(exec_mode, join_algo) pairs worth running: both kernels under
    batch, the (kernel-blind) tuple oracle once."""
    return [("batch", algo) for algo in JOINS] + [("tuple", "hash")]

# Stratified rule shapes with recursion and negation; `empty`-prefixed
# predicates never get facts, so empty-relation joins and anti-joins
# are always in play.
RULE_POOL = [
    "tc(X, Y) :- r(X, Y)",
    "tc(X, Y) :- r(X, Z), tc(Z, Y)",
    "node(X) :- r(X, Y)",
    "node(Y) :- r(X, Y)",
    "both(X) :- p(X), q(X)",
    "lonely(X) :- node(X), not both(X)",
    "source(X) :- node(X), not target(X)",
    "target(Y) :- r(X, Y)",
    "ghost(X) :- p(X), empty(X)",
    "haunted(X) :- p(X), not empty(X)",
    # Cyclic / >=3-literal bodies: the shapes the leapfrog triejoin
    # actually runs (a triangle over r, a three-way unary fan, and a
    # triangle guarded by a negation — the last must fall back).
    "wedge(X, Z) :- r(X, Y), r(Y, Z), r(X, Z)",
    "fan(X) :- p(X), q(X), node(X)",
    "shy(X, Z) :- r(X, Y), r(Y, Z), r(X, Z), not both(X)",
]

QUERY_POOL = [
    "tc(a, Y)",
    "tc(X, Y)",
    "tc(X, b)",
    "node(a)",
    "lonely(X)",
    "source(b)",
    "both(X)",
    "ghost(X)",
    "haunted(X)",
    "wedge(X, Y)",
    "wedge(a, Y)",
    "fan(X)",
    "shy(X, Y)",
]

CONSTRAINT_POOL = [
    "forall X: lonely(X) -> p(X)",
    "forall X, Y: tc(X, Y) -> node(Y)",
    "forall X: haunted(X) -> not ghost(X)",
]


@st.composite
def programs(draw):
    texts = draw(
        st.lists(
            st.sampled_from(RULE_POOL), min_size=1, max_size=6, unique=True
        )
    )
    try:
        return Program([Rule.from_parsed(parse_rule(t)) for t in texts])
    except Exception:
        from hypothesis import assume

        assume(False)


@st.composite
def edbs(draw):
    facts = FactStore()
    n = draw(st.integers(min_value=0, max_value=10))
    for _ in range(n):
        pred = draw(st.sampled_from(["p", "q", "r"]))
        if pred == "r":
            args = (
                draw(st.sampled_from(CONSTANTS)),
                draw(st.sampled_from(CONSTANTS)),
            )
        else:
            args = (draw(st.sampled_from(CONSTANTS)),)
        facts.add(Atom(pred, args))
    return facts


@st.composite
def transactions(draw):
    updates = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        pred = draw(st.sampled_from(["p", "q", "r"]))
        if pred == "r":
            args = (
                draw(st.sampled_from(CONSTANTS)),
                draw(st.sampled_from(CONSTANTS)),
            )
        else:
            args = (draw(st.sampled_from(CONSTANTS)),)
        updates.append(Literal(Atom(pred, args), draw(st.booleans())))
    return Transaction.coerce(updates)


def answer_set(engine: QueryEngine, pattern: Atom):
    return {
        frozenset((v.name, str(t)) for v, t in s.items())
        for s in engine.match_atom(pattern)
    }


class TestAnswerAgreement:
    @given(programs(), edbs(), st.sampled_from(QUERY_POOL))
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_tuple_answers(self, program, edb, query):
        pattern = parse_atom(query)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", MagicFallbackWarning)
            for strategy in STRATEGIES:
                for plan in PLANS:
                    cells = [
                        answer_set(
                            QueryEngine(
                                edb,
                                program,
                                config=EngineConfig(
                                    strategy=strategy,
                                    plan=plan,
                                    exec_mode=exec,
                                    supplementary=sup,
                                    join_algo=algo,
                                ),
                            ),
                            pattern,
                        )
                        for exec, algo in exec_join_cells()
                        for sup in SUPPLEMENTARY
                    ]
                    for cell in cells[1:]:
                        assert cell == cells[0], (strategy, plan)


class TestVerdictAgreement:
    @given(programs(), edbs(), transactions())
    @settings(max_examples=40, deadline=None)
    def test_bdm_verdicts_agree(self, program, edb, transaction):
        constraints = CONSTRAINT_POOL
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", MagicFallbackWarning)
            baseline = None
            for exec, algo in exec_join_cells():
                for strategy in STRATEGIES:
                    for plan in PLANS:
                        for sup in SUPPLEMENTARY:
                            db = DeductiveDatabase(edb.copy(), program)
                            for text in constraints:
                                db.add_constraint(text)
                            checker = IntegrityChecker(
                                db,
                                config=EngineConfig(
                                    strategy=strategy,
                                    plan=plan,
                                    exec_mode=exec,
                                    supplementary=sup,
                                    join_algo=algo,
                                ),
                            )
                            result = checker.check_bdm(transaction)
                            verdict = (
                                result.ok,
                                frozenset(result.violated_constraint_ids()),
                            )
                            if baseline is None:
                                baseline = verdict
                            else:
                                assert verdict == baseline, (
                                    exec, algo, strategy, plan, sup,
                                )


class TestMaintainedModelAgreement:
    """DRed maintenance has no magic path, so the supplementary knob
    cannot reach it by construction — the exec sweep is the full
    matrix here; the checker sweeps above cover supplementary end to
    end (their DeltaEvaluator/NewEvaluator engines thread it)."""

    @given(programs(), edbs(), transactions())
    @settings(max_examples=40, deadline=None)
    def test_dred_end_states_agree(self, program, edb, transaction):
        states = []
        for exec, algo in exec_join_cells():
            maintained = MaintainedModel(
                edb.copy(),
                program,
                config=EngineConfig(
                    plan="greedy", exec_mode=exec, join_algo=algo
                ),
            )
            inserted, deleted = maintained.apply(transaction)
            states.append(
                (
                    frozenset(maintained.model),
                    frozenset(maintained.edb),
                    frozenset(inserted),
                    frozenset(deleted),
                )
            )
        for state in states[1:]:
            assert state == states[0]

    @given(programs(), edbs(), transactions(), transactions())
    @settings(max_examples=20, deadline=None)
    def test_dred_agrees_across_two_transactions(
        self, program, edb, first, second
    ):
        models = []
        for exec, algo in exec_join_cells():
            maintained = MaintainedModel(
                edb.copy(),
                program,
                config=EngineConfig(
                    plan="source", exec_mode=exec, join_algo=algo
                ),
            )
            maintained.apply(first)
            maintained.apply(second)
            models.append(frozenset(maintained.model))
        for model in models[1:]:
            assert model == models[0]


def matrix_verdicts(db, updates, exec, join_algo="hash"):
    """One (exec mode, join algo) cell's verdict sequence over the
    strategy/plan/supplementary matrix — the cells must agree within a
    mode (and, asserted by the caller, across modes and kernels)."""
    baseline = None
    for strategy in STRATEGIES:
        for plan in PLANS:
            for sup in SUPPLEMENTARY:
                checker = IntegrityChecker(
                    db,
                    config=EngineConfig(
                        strategy=strategy,
                        plan=plan,
                        exec_mode=exec,
                        supplementary=sup,
                        join_algo=join_algo,
                    ),
                )
                verdicts = [
                    (
                        result.ok,
                        frozenset(result.violated_constraint_ids()),
                    )
                    for result in (checker.check_bdm(u) for u in updates)
                ]
                if baseline is None:
                    baseline = verdicts
                else:
                    assert verdicts == baseline, (exec, strategy, plan, sup)
    return baseline


class TestWorkloadAgreement:
    def test_relational_workload(self):
        workload = RelationalWorkload(n_employees=18, seed=7)
        db = workload.build()
        updates = workload.update_stream(10, violation_rate=0.4, seed=11)
        batch = matrix_verdicts(db, updates, "batch")
        wcoj = matrix_verdicts(db, updates, "batch", "wcoj")
        tuple_ = matrix_verdicts(db, updates, "tuple")
        assert batch == tuple_ == wcoj
        assert any(ok for ok, _ in batch)
        assert any(not ok for ok, _ in batch)

    def test_deductive_ancestor_workload(self):
        db, update = ancestor_database(10)
        updates = [update, "par(g10, g0)", "not par(g0, g1)"]
        batch = matrix_verdicts(db, updates, "batch")
        assert batch == matrix_verdicts(db, updates, "tuple")
        assert batch == matrix_verdicts(db, updates, "batch", "wcoj")

    def test_deductive_rule_chain_workload(self):
        db, update = rule_chain_database(depth=3, width=4)
        updates = [update, "not ok(m1)", "c0(stranger)"]
        batch = matrix_verdicts(db, updates, "batch")
        assert batch == matrix_verdicts(db, updates, "tuple")
        assert batch == matrix_verdicts(db, updates, "batch", "wcoj")

    def test_orders_workload(self):
        workload = OrdersWorkload(n_customers=5, seed=3)
        db = workload.build()
        deletions = workload.deletion_stream(6, seed=9)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", MagicFallbackWarning)
            batch = matrix_verdicts(db, deletions, "batch")
            tuple_ = matrix_verdicts(db, deletions, "tuple")
        assert batch == tuple_
        assert any(not ok for ok, _ in batch)

"""Property: join planning never changes any answer, only its cost.

The greedy plan must be a pure optimization — on random stratified
programs and random extensional databases, every evaluator has to
produce exactly the same models, answers and verdicts under
``plan="greedy"`` as under the unplanned ``plan="source"`` oracle.
"""

from hypothesis import assume, given, settings
import hypothesis.strategies as st

from repro.config import EngineConfig
from repro.datalog.bottomup import compute_model
from repro.datalog.database import DeductiveDatabase
from repro.datalog.facts import FactStore
from repro.datalog.program import Program, Rule
from repro.datalog.topdown import TabledEvaluator
from repro.logic.formulas import Atom
from repro.logic.parser import parse_rule
from repro.logic.terms import Variable

from tests.property.strategies import CONSTANTS

# Rule shapes with multi-literal bodies (the planner has nothing to
# decide on single-literal ones), including negation so the interleaved
# closed-world tests are exercised under reordering.
RULE_POOL = [
    "tc(X, Y) :- r(X, Y)",
    "tc(X, Y) :- r(X, Z), tc(Z, Y)",
    "tri(X, Z) :- r(X, Y), r(Y, Z), p(X)",
    "meet(X, Y) :- p(X), q(Y), r(X, Y)",
    "both(X) :- p(X), q(X)",
    "node(X) :- r(X, Y)",
    "target(Y) :- r(X, Y)",
    "lonely(X) :- node(X), not both(X)",
    "source(X) :- node(X), not target(X)",
    "far(X, Y) :- tc(X, Y), not r(X, Y)",
]

QUERY_PREDS = [
    ("tc", 2),
    ("tri", 2),
    ("meet", 2),
    ("both", 1),
    ("node", 1),
    ("target", 1),
    ("lonely", 1),
    ("source", 1),
    ("far", 2),
]


@st.composite
def programs(draw):
    texts = draw(
        st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=6, unique=True)
    )
    try:
        return Program([Rule.from_parsed(parse_rule(t)) for t in texts])
    except Exception:
        assume(False)


@st.composite
def edbs(draw):
    facts = FactStore()
    n = draw(st.integers(min_value=0, max_value=10))
    for _ in range(n):
        pred = draw(st.sampled_from(["p", "q", "r"]))
        if pred == "r":
            args = (
                draw(st.sampled_from(CONSTANTS)),
                draw(st.sampled_from(CONSTANTS)),
            )
        else:
            args = (draw(st.sampled_from(CONSTANTS)),)
        facts.add(Atom(pred, args))
    return facts


class TestPlanIndependence:
    @given(programs(), edbs())
    @settings(max_examples=60, deadline=None)
    def test_bottom_up_models_identical(self, program, edb):
        greedy = compute_model(edb, program, "greedy")
        source = compute_model(edb, program, "source")
        assert set(greedy) == set(source)

    @given(programs(), edbs())
    @settings(max_examples=40, deadline=None)
    def test_topdown_answers_identical(self, program, edb):
        greedy = TabledEvaluator(edb, program, "greedy")
        source = TabledEvaluator(edb, program, "source")
        X, Y = Variable("X"), Variable("Y")
        for pred, arity in QUERY_PREDS:
            pattern = Atom(pred, (X, Y)[:arity])
            assert set(greedy.solve(pattern)) == set(source.solve(pattern)), pred

    @given(programs(), edbs())
    @settings(max_examples=40, deadline=None)
    def test_engine_strategies_agree_across_plans(self, program, edb):
        db = DeductiveDatabase(edb.copy(), program)
        X, Y = Variable("X"), Variable("Y")
        for strategy in ("lazy", "topdown"):
            for pred, arity in QUERY_PREDS:
                pattern = Atom(pred, (X, Y)[:arity])
                greedy = {
                    repr(s)
                    for s in db.engine(config=EngineConfig(strategy=strategy, plan="greedy")).match_atom(pattern)
                }
                source = {
                    repr(s)
                    for s in db.engine(config=EngineConfig(strategy=strategy, plan="source")).match_atom(pattern)
                }
                assert greedy == source, (strategy, pred)

    @given(programs(), edbs())
    @settings(max_examples=30, deadline=None)
    def test_constraint_verdicts_agree_across_plans(self, program, edb):
        db = DeductiveDatabase(edb.copy(), program)
        db.add_constraint("forall X: node(X) -> p(X)")
        db.add_constraint("forall X, Y: r(X, Y), p(X) -> q(Y)")
        greedy = {c.id for c in db.violated_constraints(plan="greedy")}
        source = {c.id for c in db.violated_constraints(plan="source")}
        assert greedy == source

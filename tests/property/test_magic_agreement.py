"""The magic strategy must be answer- and verdict-equivalent.

The demand transformation is an optimization, never a semantics change:
for every query pattern, ``strategy="magic"`` must return exactly the
answers the lazy closure materialization returns, under both join plans
(``source`` and ``greedy`` choose different SIP orders, hence different
adornments — all of them must agree); and the integrity checker must
reach identical verdicts across the relational, deductive and orders
workloads. Negation fall-back cases (rewrites declined because demand
propagation would break stratification) are included: the fallback path
must be answer-identical too.
"""

import warnings

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.config import EngineConfig
from repro.datalog.database import DeductiveDatabase
from repro.datalog.facts import FactStore
from repro.datalog.magic import MagicFallbackWarning
from repro.datalog.program import Program, Rule
from repro.datalog.query import QueryEngine
from repro.integrity.checker import IntegrityChecker
from repro.logic.formulas import Atom
from repro.logic.parser import parse_atom, parse_rule
from repro.workloads.deductive import (
    ancestor_database,
    rule_chain_database,
)
from repro.workloads.orders import OrdersWorkload
from repro.workloads.relational import RelationalWorkload

from tests.property.strategies import CONSTANTS

PLANS = ("source", "greedy")

# Stratified rule shapes, including negation (both the benign kind the
# rewrite handles and shapes that exercise the demand adornments).
RULE_POOL = [
    "tc(X, Y) :- r(X, Y)",
    "tc(X, Y) :- r(X, Z), tc(Z, Y)",
    "sym(X, Y) :- r(X, Y)",
    "sym(X, Y) :- r(Y, X)",
    "node(X) :- r(X, Y)",
    "node(Y) :- r(X, Y)",
    "both(X) :- p(X), q(X)",
    "either(X) :- p(X)",
    "either(X) :- q(X)",
    "lonely(X) :- node(X), not both(X)",
    "source(X) :- node(X), not target(X)",
    "target(Y) :- r(X, Y)",
]

# Query patterns with at least one bound argument (rewritable) and
# fully free ones (exercising the fallback path).
QUERY_POOL = [
    "tc(a, Y)",
    "tc(X, b)",
    "tc(a, b)",
    "tc(X, Y)",
    "sym(b, Y)",
    "node(a)",
    "both(c)",
    "either(a)",
    "lonely(b)",
    "source(a)",
    "target(X)",
]


@st.composite
def programs(draw):
    texts = draw(
        st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=6, unique=True)
    )
    try:
        return Program([Rule.from_parsed(parse_rule(t)) for t in texts])
    except Exception:
        from hypothesis import assume

        assume(False)


@st.composite
def edbs(draw):
    facts = FactStore()
    n = draw(st.integers(min_value=0, max_value=8))
    for _ in range(n):
        pred = draw(st.sampled_from(["p", "q", "r"]))
        if pred == "r":
            args = (
                draw(st.sampled_from(CONSTANTS)),
                draw(st.sampled_from(CONSTANTS)),
            )
        else:
            args = (draw(st.sampled_from(CONSTANTS)),)
        facts.add(Atom(pred, args))
    return facts


def answer_set(engine: QueryEngine, pattern: Atom):
    return {
        frozenset((v.name, str(t)) for v, t in s.items())
        for s in engine.match_atom(pattern)
    }


class TestRandomProgramAgreement:
    @given(programs(), edbs(), st.sampled_from(QUERY_POOL))
    @settings(max_examples=80, deadline=None)
    def test_magic_matches_lazy_answers(self, program, edb, query):
        pattern = parse_atom(query)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", MagicFallbackWarning)
            for plan in PLANS:
                lazy = QueryEngine(edb, program, config=EngineConfig(strategy="lazy", plan=plan))
                magic = QueryEngine(edb, program, config=EngineConfig(strategy="magic", plan=plan))
                assert answer_set(magic, pattern) == answer_set(lazy, pattern)

    @given(programs(), edbs())
    @settings(max_examples=40, deadline=None)
    def test_magic_matches_lazy_ground_truth(self, program, edb):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", MagicFallbackWarning)
            lazy = QueryEngine(edb, program, config=EngineConfig(strategy="lazy"))
            magic = QueryEngine(edb, program, config=EngineConfig(strategy="magic"))
            for pred, arity in [("tc", 2), ("lonely", 1), ("source", 1)]:
                for c in CONSTANTS:
                    atom = Atom(pred, (c,) * arity)
                    assert magic.holds(atom) is lazy.holds(atom), str(atom)


def check_verdicts(db, updates):
    """Verdicts and violated-constraint ids per update, for one
    (strategy, plan) matrix — all cells must be identical."""
    baseline = None
    for plan in PLANS:
        for strategy in ("lazy", "magic"):
            checker = IntegrityChecker(
                db, config=EngineConfig(strategy=strategy, plan=plan)
            )
            verdicts = []
            for update in updates:
                result = checker.check_bdm(update)
                verdicts.append(
                    (result.ok, frozenset(result.violated_constraint_ids()))
                )
            if baseline is None:
                baseline = verdicts
            else:
                assert verdicts == baseline, (strategy, plan)
    return baseline


class TestWorkloadVerdictAgreement:
    def test_relational_workload(self):
        workload = RelationalWorkload(n_employees=20, seed=3)
        db = workload.build()
        updates = workload.update_stream(12, violation_rate=0.4, seed=5)
        verdicts = check_verdicts(db, updates)
        # The stream mixes harmless and violating updates; make sure
        # the agreement is not vacuous.
        assert any(ok for ok, _ in verdicts)
        assert any(not ok for ok, _ in verdicts)

    def test_deductive_ancestor_workload(self):
        db, update = ancestor_database(12)
        check_verdicts(
            db,
            [update, "par(g12, g0)", "not par(g0, g1)", "person(new)"],
        )

    def test_deductive_rule_chain_workload(self):
        db, update = rule_chain_database(depth=3, width=4)
        check_verdicts(db, [update, "not ok(m1)", "c0(stranger)"])

    def test_orders_workload(self):
        workload = OrdersWorkload(n_customers=6, seed=2)
        db = workload.build()
        deletions = workload.deletion_stream(8, seed=4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", MagicFallbackWarning)
            verdicts = check_verdicts(db, deletions)
        assert any(not ok for ok, _ in verdicts)


class TestNegationFallbackAgreement:
    SOURCE = """
    e(a, b). e(b, c). f(b). g(a). g(b). g(c).
    p(X) :- a(X, Y), b(Y).
    a(X, Y) :- e(X, Y), not b(X).
    b(X) :- f(X).
    """

    @pytest.mark.parametrize("plan", PLANS)
    def test_declined_rewrite_falls_back_identically(self, plan):
        db = DeductiveDatabase.from_source(self.SOURCE)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", MagicFallbackWarning)
            lazy = db.engine(config=EngineConfig(strategy="lazy", plan=plan))
            magic = db.engine(config=EngineConfig(strategy="magic", plan=plan))
            for text in ("p(a)", "p(b)", "p(c)", "a(a, b)", "b(b)"):
                atom = parse_atom(text)
                assert magic.holds(atom) is lazy.holds(atom), text
            assert ("p", "b") in magic.magic.declined

    def test_verdicts_agree_despite_fallback(self):
        db = DeductiveDatabase.from_source(
            self.SOURCE + "forall X: p(X) -> g(X).\n"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", MagicFallbackWarning)
            check_verdicts(db, ["e(c, d)", "f(a)", "not f(b)"])

"""Suite-wide configuration.

Two process-wide knobs select which engine paths the suite exercises
end to end (the CI matrix legs):

* ``REPRO_EXEC=tuple`` runs the tuple-at-a-time join oracle instead of
  the default set-at-a-time ``batch`` path
  (:data:`repro.datalog.joins.DEFAULT_EXEC`).
* ``REPRO_BACKEND=sqlite`` stores every default-constructed fact store
  out of core in SQLite instead of the in-process ``dict`` backend
  (:data:`repro.storage.backends.DEFAULT_BACKEND`).
* ``REPRO_JOIN=wcoj`` runs the worst-case-optimal leapfrog triejoin on
  every eligible rule body instead of the ``auto`` planner default
  (:data:`repro.datalog.joins.DEFAULT_JOIN`).

All defaults are read at import time and every evaluator/constructor
defaults to them, so no test needs to thread the knobs explicitly.
"""

import os

import pytest

# A typo'd REPRO_EXEC / REPRO_BACKEND / REPRO_JOIN fails these imports
# (the values are validated where the defaults are read), so the whole
# session aborts with one clear error before any test runs.
from repro.datalog.joins import DEFAULT_EXEC, DEFAULT_JOIN
from repro.storage.backends import DEFAULT_BACKEND


def pytest_report_header(config):
    exec_source = "REPRO_EXEC" if os.environ.get("REPRO_EXEC") else "default"
    backend_source = (
        "REPRO_BACKEND" if os.environ.get("REPRO_BACKEND") else "default"
    )
    join_source = "REPRO_JOIN" if os.environ.get("REPRO_JOIN") else "default"
    return (
        f"repro join exec mode: {DEFAULT_EXEC} ({exec_source}); "
        f"fact-store backend: {DEFAULT_BACKEND} ({backend_source}); "
        f"join algo: {DEFAULT_JOIN} ({join_source})"
    )


@pytest.fixture(scope="session")
def exec_mode() -> str:
    """The execution model this test session runs under."""
    return DEFAULT_EXEC


@pytest.fixture(scope="session")
def backend() -> str:
    """The fact-store backend this test session runs under."""
    return DEFAULT_BACKEND


@pytest.fixture(scope="session")
def join_algo() -> str:
    """The default join algorithm this test session runs under."""
    return DEFAULT_JOIN

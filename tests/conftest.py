"""Suite-wide configuration.

The join execution model is a process-wide knob: running the suite
under ``REPRO_EXEC=tuple`` exercises the tuple-at-a-time oracle path
end to end (the CI matrix's oracle leg); the default ``batch`` runs the
set-at-a-time hash-join path. :data:`repro.datalog.joins.DEFAULT_EXEC`
reads the variable at import time and every evaluator defaults to it,
so no test needs to thread the knob explicitly.
"""

import os

import pytest

# A typo'd REPRO_EXEC fails this import (joins.py validates the value),
# so the whole session aborts with one clear error before any test runs.
from repro.datalog.joins import DEFAULT_EXEC


def pytest_report_header(config):
    source = "REPRO_EXEC" if os.environ.get("REPRO_EXEC") else "default"
    return f"repro join exec mode: {DEFAULT_EXEC} ({source})"


@pytest.fixture(scope="session")
def exec_mode() -> str:
    """The execution model this test session runs under."""
    return DEFAULT_EXEC

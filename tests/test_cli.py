"""Tests for the command-line interface."""

import pytest

from repro.cli import main

DB_SOURCE = """
employee(ann).
leads(ann, sales).
member(X, Y) :- leads(X, Y).
forall X, Y: member(X, Y) -> employee(X).
exists X: employee(X).
"""

SAT_SOURCE = """
exists X: p(X).
forall X: p(X) -> q(X).
"""

UNSAT_SOURCE = """
exists X: p(X).
forall X: not p(X).
"""


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.dl"
    path.write_text(DB_SOURCE)
    return str(path)


class TestCheck:
    def test_ok_update_exit_zero(self, db_file, capsys):
        code = main(["check", db_file, "--update", "employee(bob)"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_violation_exit_one(self, db_file, capsys):
        code = main(["check", db_file, "--update", "leads(bob, hr)"])
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out
        assert "c1" in out

    def test_transaction_updates(self, db_file):
        code = main(
            [
                "check",
                db_file,
                "--update",
                "employee(bob)",
                "--update",
                "leads(bob, hr)",
            ]
        )
        assert code == 0

    def test_method_selection(self, db_file):
        for method in ("full", "nicolas", "interleaved", "lloyd"):
            code = main(
                ["check", db_file, "--method", method, "--update",
                 "employee(bob)"]
            )
            assert code == 0, method

    def test_stats_flag(self, db_file, capsys):
        main(["check", db_file, "--update", "employee(bob)", "--stats"])
        assert "# " in capsys.readouterr().out

    def test_apply_prints_updated_source(self, db_file, capsys):
        code = main(
            ["check", db_file, "--update", "employee(bob)", "--apply"]
        )
        assert code == 0
        assert "employee(bob)." in capsys.readouterr().out

    def test_apply_skipped_on_violation(self, db_file, capsys):
        code = main(
            ["check", db_file, "--update", "leads(bob, hr)", "--apply"]
        )
        assert code == 1
        assert "leads(bob, hr)." not in capsys.readouterr().out


class TestSatcheck:
    def test_satisfiable_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "sat.dl"
        path.write_text(SAT_SOURCE)
        code = main(["satcheck", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "satisfiable" in out
        assert "finite model" in out

    def test_unsatisfiable_exit_one(self, tmp_path, capsys):
        path = tmp_path / "unsat.dl"
        path.write_text(UNSAT_SOURCE)
        code = main(["satcheck", str(path)])
        assert code == 1
        assert "unsatisfiable" in capsys.readouterr().out

    def test_unknown_exit_two(self, tmp_path):
        path = tmp_path / "inf.dl"
        path.write_text(
            """
            exists X: p(X).
            forall X: p(X) -> exists Y: p(Y) and r(X, Y).
            forall X: not r(X, X).
            forall X, Y: r(X, Y) -> not r(Y, X).
            forall [X, Y, Z]: r(X, Y) and r(Y, Z) -> r(X, Z).
            """
        )
        code = main(["satcheck", str(path), "--budget", "3"])
        assert code == 2

    def test_no_reuse_mode(self, tmp_path):
        path = tmp_path / "serial.dl"
        path.write_text(
            """
            exists X: p(X).
            forall X: p(X) -> exists Y: p(Y) and r(X, Y).
            """
        )
        assert main(["satcheck", str(path)]) == 0
        assert (
            main(
                ["satcheck", str(path), "--no-reuse", "--budget", "4",
                 "--no-deepening"]
            )
            == 2
        )

    def test_trace_flag(self, tmp_path, capsys):
        path = tmp_path / "sat.dl"
        path.write_text(SAT_SOURCE)
        main(["satcheck", str(path), "--trace"])
        assert "trace:" in capsys.readouterr().out


class TestKnobValidation:
    """Bad --plan/--strategy values must die with a one-line error
    listing the accepted values, not a traceback from deep inside
    evaluation."""

    def test_bad_plan_rejected_up_front(self, db_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", db_file, "--update", "employee(bob)",
                  "--plan", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "greedy" in err and "source" in err

    def test_bad_strategy_rejected_up_front(self, db_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", db_file, "member(ann, sales)",
                  "--strategy", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "magic" in err and "lazy" in err

    def test_strategy_knob_on_check(self, db_file):
        for strategy in ("lazy", "topdown", "model", "magic"):
            code = main(
                ["check", db_file, "--update", "employee(bob)",
                 "--strategy", strategy]
            )
            assert code == 0, strategy

    def test_strategy_knob_on_query(self, db_file, capsys):
        code = main(
            ["query", db_file, "member(ann, sales)", "--strategy", "magic"]
        )
        assert code == 0
        assert "true" in capsys.readouterr().out

    def test_magic_detects_violation(self, db_file):
        code = main(
            ["check", db_file, "--update", "leads(bob, hr)",
             "--strategy", "magic"]
        )
        assert code == 1


class TestQueryAndModel:
    def test_query_true(self, db_file, capsys):
        code = main(["query", db_file, "member(ann, sales)"])
        assert code == 0
        assert "true" in capsys.readouterr().out

    def test_query_false(self, db_file, capsys):
        code = main(["query", db_file, "member(bob, sales)"])
        assert code == 1
        assert "false" in capsys.readouterr().out

    def test_query_quantified(self, db_file):
        assert (
            main(["query", db_file, "forall X, Y: leads(X, Y) -> member(X, Y)"])
            == 0
        )

    def test_model_lists_derived_facts(self, db_file, capsys):
        code = main(["model", db_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "member(ann, sales)" in out
        assert "leads(ann, sales)" in out

"""Tests for the command-line interface."""

import pytest

from repro.cli import main

DB_SOURCE = """
employee(ann).
leads(ann, sales).
member(X, Y) :- leads(X, Y).
forall X, Y: member(X, Y) -> employee(X).
exists X: employee(X).
"""

SAT_SOURCE = """
exists X: p(X).
forall X: p(X) -> q(X).
"""

UNSAT_SOURCE = """
exists X: p(X).
forall X: not p(X).
"""


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.dl"
    path.write_text(DB_SOURCE)
    return str(path)


class TestCheck:
    def test_ok_update_exit_zero(self, db_file, capsys):
        code = main(["check", db_file, "--update", "employee(bob)"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_violation_exit_one(self, db_file, capsys):
        code = main(["check", db_file, "--update", "leads(bob, hr)"])
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out
        assert "c1" in out

    def test_transaction_updates(self, db_file):
        code = main(
            [
                "check",
                db_file,
                "--update",
                "employee(bob)",
                "--update",
                "leads(bob, hr)",
            ]
        )
        assert code == 0

    def test_method_selection(self, db_file):
        for method in ("full", "nicolas", "interleaved", "lloyd"):
            code = main(
                ["check", db_file, "--method", method, "--update",
                 "employee(bob)"]
            )
            assert code == 0, method

    def test_stats_flag(self, db_file, capsys):
        main(["check", db_file, "--update", "employee(bob)", "--stats"])
        assert "# " in capsys.readouterr().out

    def test_apply_prints_updated_source(self, db_file, capsys):
        code = main(
            ["check", db_file, "--update", "employee(bob)", "--apply"]
        )
        assert code == 0
        assert "employee(bob)." in capsys.readouterr().out

    def test_apply_skipped_on_violation(self, db_file, capsys):
        code = main(
            ["check", db_file, "--update", "leads(bob, hr)", "--apply"]
        )
        assert code == 1
        assert "leads(bob, hr)." not in capsys.readouterr().out


class TestSatcheck:
    def test_satisfiable_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "sat.dl"
        path.write_text(SAT_SOURCE)
        code = main(["satcheck", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "satisfiable" in out
        assert "finite model" in out

    def test_unsatisfiable_exit_one(self, tmp_path, capsys):
        path = tmp_path / "unsat.dl"
        path.write_text(UNSAT_SOURCE)
        code = main(["satcheck", str(path)])
        assert code == 1
        assert "unsatisfiable" in capsys.readouterr().out

    def test_unknown_exit_two(self, tmp_path):
        path = tmp_path / "inf.dl"
        path.write_text(
            """
            exists X: p(X).
            forall X: p(X) -> exists Y: p(Y) and r(X, Y).
            forall X: not r(X, X).
            forall X, Y: r(X, Y) -> not r(Y, X).
            forall [X, Y, Z]: r(X, Y) and r(Y, Z) -> r(X, Z).
            """
        )
        code = main(["satcheck", str(path), "--budget", "3"])
        assert code == 2

    def test_no_reuse_mode(self, tmp_path):
        path = tmp_path / "serial.dl"
        path.write_text(
            """
            exists X: p(X).
            forall X: p(X) -> exists Y: p(Y) and r(X, Y).
            """
        )
        assert main(["satcheck", str(path)]) == 0
        assert (
            main(
                ["satcheck", str(path), "--no-reuse", "--budget", "4",
                 "--no-deepening"]
            )
            == 2
        )

    def test_trace_flag(self, tmp_path, capsys):
        path = tmp_path / "sat.dl"
        path.write_text(SAT_SOURCE)
        main(["satcheck", str(path), "--trace"])
        assert "trace:" in capsys.readouterr().out


class TestKnobValidation:
    """Bad --plan/--strategy values must die with a one-line error
    listing the accepted values, not a traceback from deep inside
    evaluation."""

    def test_bad_plan_rejected_up_front(self, db_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", db_file, "--update", "employee(bob)",
                  "--plan", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "greedy" in err and "source" in err

    def test_bad_strategy_rejected_up_front(self, db_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", db_file, "member(ann, sales)",
                  "--strategy", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "magic" in err and "lazy" in err

    def test_strategy_knob_on_check(self, db_file):
        for strategy in ("lazy", "topdown", "model", "magic"):
            code = main(
                ["check", db_file, "--update", "employee(bob)",
                 "--strategy", strategy]
            )
            assert code == 0, strategy

    def test_strategy_knob_on_query(self, db_file, capsys):
        code = main(
            ["query", db_file, "member(ann, sales)", "--strategy", "magic"]
        )
        assert code == 0
        assert "true" in capsys.readouterr().out

    def test_magic_detects_violation(self, db_file):
        code = main(
            ["check", db_file, "--update", "leads(bob, hr)",
             "--strategy", "magic"]
        )
        assert code == 1

    def test_no_supplementary_oracle_agrees(self, db_file, capsys):
        """--no-supplementary selects the classic rewrite; verdicts and
        query answers must not change."""
        for extra in ([], ["--no-supplementary"]):
            assert main(
                ["check", db_file, "--update", "employee(bob)",
                 "--strategy", "magic", *extra]
            ) == 0
            assert main(
                ["check", db_file, "--update", "leads(bob, hr)",
                 "--strategy", "magic", *extra]
            ) == 1
            assert main(
                ["query", db_file, "member(ann, sales)",
                 "--strategy", "magic", *extra]
            ) == 0

    def test_no_supplementary_accepted_without_magic(self, db_file):
        # The flag is inert for other strategies but must parse.
        assert main(
            ["query", db_file, "member(ann, sales)", "--no-supplementary"]
        ) == 0


class TestQueryAndModel:
    def test_query_true(self, db_file, capsys):
        code = main(["query", db_file, "member(ann, sales)"])
        assert code == 0
        assert "true" in capsys.readouterr().out

    def test_query_false(self, db_file, capsys):
        code = main(["query", db_file, "member(bob, sales)"])
        assert code == 1
        assert "false" in capsys.readouterr().out

    def test_query_quantified(self, db_file):
        assert (
            main(["query", db_file, "forall X, Y: leads(X, Y) -> member(X, Y)"])
            == 0
        )

    def test_model_lists_derived_facts(self, db_file, capsys):
        code = main(["model", db_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "member(ann, sales)" in out
        assert "leads(ann, sales)" in out


class TestBackendAndCacheKnobs:
    def test_backend_knob_answers_agree(self, db_file, capsys):
        for backend in ("dict", "sqlite"):
            assert (
                main(
                    ["query", db_file, "member(ann, sales)",
                     "--backend", backend]
                )
                == 0
            )
        # Both backends printed the same verdict.
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["true", "true"]

    def test_backend_knob_on_check_and_model(self, db_file, capsys):
        assert (
            main(["check", db_file, "--update", "employee(bob)",
                  "--backend", "sqlite"])
            == 0
        )
        assert main(["model", db_file, "--backend", "sqlite"]) == 0
        assert "member(ann, sales)" in capsys.readouterr().out

    def test_bad_backend_rejected_up_front(self, db_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", db_file, "member(ann, sales)",
                  "--backend", "postgres"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "dict" in err and "sqlite" in err

    def test_cache_flag_parses_both_ways(self, db_file):
        assert (
            main(["query", db_file, "member(ann, sales)", "--cache"]) == 0
        )
        assert (
            main(["query", db_file, "member(ann, sales)", "--no-cache"]) == 0
        )
        assert (
            main(["check", db_file, "--update", "employee(bob)", "--cache"])
            == 0
        )


class TestJsonFormat:
    """``--format json`` emits one JSON object in the service
    protocol's schema (one serializer, repro.serialize, for both)."""

    def test_check_ok_json(self, db_file, capsys):
        import json

        code = main(
            ["check", db_file, "--update", "employee(bob)",
             "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["method"] == "bdm"
        assert payload["violations"] == []
        assert payload["updates"] == ["employee(bob)"]
        assert "lookups" in payload["stats"]

    def test_check_violation_json_carries_witnesses(self, db_file, capsys):
        import json

        code = main(
            ["check", db_file, "--update", "leads(bob, hr)",
             "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False
        assert payload["violations"] == [
            {
                "constraint": "c1",
                "instance": "employee(bob)",
                "trigger": "member(bob, hr)",
            }
        ]

    def test_check_json_matches_service_schema(self, db_file, capsys):
        """The CLI payload parses as the same shape the socket commit
        response embeds under ``check``."""
        import json

        main(["check", db_file, "--update", "leads(bob, hr)",
              "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"ok", "method", "violations", "stats",
                                "updates"}

    def test_check_apply_json_carries_updated_source(self, db_file, capsys):
        import json

        code = main(
            ["check", db_file, "--update", "employee(bob)", "--apply",
             "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert "employee(bob)." in payload["applied"]

    def test_check_apply_json_omitted_on_violation(self, db_file, capsys):
        import json

        code = main(
            ["check", db_file, "--update", "leads(bob, hr)", "--apply",
             "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert "applied" not in payload

    def test_query_json(self, db_file, capsys):
        import json

        code = main(
            ["query", db_file, "member(ann, sales)", "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload == {"formula": "member(ann, sales)", "value": True}

    def test_query_json_false(self, db_file, capsys):
        import json

        code = main(
            ["query", db_file, "member(bob, sales)", "--format", "json"]
        )
        assert code == 1
        assert json.loads(capsys.readouterr().out)["value"] is False

    def test_bad_format_rejected_up_front(self, db_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", db_file, "employee(ann)", "--format", "yaml"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestServeAndShell:
    """The service verbs: serve hosts a root over a socket; shell
    drives it with NDJSON output."""

    @pytest.fixture
    def live_server(self, tmp_path):
        from repro.service.server import DatabaseServer

        server = DatabaseServer(
            tmp_path / "root", port=0, sync=False
        ).start()
        yield server
        server.close()

    def test_shell_session_roundtrip(
        self, live_server, db_file, capsys, monkeypatch
    ):
        import io
        import json

        host, port = live_server.address
        commands = "\n".join(
            [
                f"open hr {db_file}",
                "begin",
                "stage employee(bob)",
                "commit",
                "query employee(bob)",
                "begin",
                "stage leads(ghost, hr)",
                "commit",
                "quit",
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(commands + "\n"))
        code = main(["shell", "--host", host, "--port", str(port)])
        assert code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        statuses = [l["status"] for l in lines if "status" in l]
        assert statuses == ["committed", "rejected"]
        values = [l["value"] for l in lines if "value" in l]
        assert values == [True]

    def test_shell_reports_errors_without_dying(
        self, live_server, capsys, monkeypatch
    ):
        import io
        import json

        host, port = live_server.address
        commands = "begin\nnonsense\nping\nquit\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(commands))
        code = main(["shell", "--host", host, "--port", str(port)])
        assert code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        assert [l["ok"] for l in lines] == [False, False, True]

    def test_serve_runs_until_interrupted(self, tmp_path, monkeypatch, capsys):
        """``repro serve`` binds, announces its address, and shuts down
        cleanly on KeyboardInterrupt."""
        from repro.service import server as server_module

        started = {}
        original_serve = server_module.DatabaseServer.serve_forever

        def fake_serve(self):
            started["address"] = self.address
            raise KeyboardInterrupt

        monkeypatch.setattr(
            server_module.DatabaseServer, "serve_forever", fake_serve
        )
        code = main(["serve", str(tmp_path / "root"), "--port", "0"])
        assert code == 0
        assert started["address"][1] > 0
        out = capsys.readouterr().out
        assert "listening on" in out
        assert original_serve is not fake_serve

    def test_shell_unreachable_server_is_one_line_error(self, capsys):
        code = main(["shell", "--port", "1"])  # nothing listens on 1
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot connect")
        assert "Traceback" not in err

    def test_shell_failed_initial_open_is_one_line_error(
        self, live_server, capsys, monkeypatch
    ):
        import io

        host, port = live_server.address
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        # ".hidden" fails the server's database-name validation.
        code = main(
            ["shell", "--host", host, "--port", str(port), "--db",
             ".hidden"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "open '.hidden' failed" in err
        assert "Traceback" not in err

"""Setup shim.

All metadata lives in pyproject.toml; this file exists so the project
can be installed editably in offline environments whose tooling lacks
the ``wheel`` package (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()

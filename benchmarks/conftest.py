"""Shared fixtures and reporting helpers for the benchmark harness.

Every experiment (E1–E8, see DESIGN.md §4) gets one module. Benchmarks
measure wall time through pytest-benchmark; the *shape* claims (who does
less work) are additionally asserted on deterministic operation counts
(atom lookups, instances evaluated, induced updates computed) so the
qualitative reproduction does not depend on machine speed.

With ``REPRO_METRICS_OUT=<path>`` set, the session's final metrics-
registry snapshot (see :mod:`repro.obs.metrics`) is dumped there as
JSON — ``run_all.py`` uses this to embed per-benchmark engine counters
(joins, derivations, cache traffic, WAL volume) in ``BENCH_pr.json``.
"""

import json
import os


def pytest_sessionfinish(session, exitstatus):
    out = os.environ.get("REPRO_METRICS_OUT")
    if not out:
        return
    from repro.obs.metrics import default_registry

    with open(out, "w") as handle:
        json.dump(default_registry().snapshot(), handle, indent=2)


def report(title, rows, header):
    """Print a small aligned table (visible with -s; kept in captured
    output otherwise). Rows are tuples aligned with *header*."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows))
        for i, h in enumerate(header)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))

"""Shared fixtures and reporting helpers for the benchmark harness.

Every experiment (E1–E8, see DESIGN.md §4) gets one module. Benchmarks
measure wall time through pytest-benchmark; the *shape* claims (who does
less work) are additionally asserted on deterministic operation counts
(atom lookups, instances evaluated, induced updates computed) so the
qualitative reproduction does not depend on machine speed.
"""

def report(title, rows, header):
    """Print a small aligned table (visible with -s; kept in captured
    output otherwise). Rows are tuples aligned with *header*."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows))
        for i, h in enumerate(header)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))

"""Benchmark smoke runner: execute every ``bench_e*.py`` quickly and
record wall-clock per experiment.

CI runs this on every PR (quick mode, measurement disabled — the point
is a perf *trajectory* and a liveness check, not publishable numbers)
and uploads the resulting ``BENCH_pr.json`` artifact, so regressions
show up as a step in the per-experiment wall-clock series across PRs.

Usage::

    python benchmarks/run_all.py [--out BENCH_pr.json] [--full]

Exit status is non-zero if any benchmark fails, so the smoke job also
guards the benchmarks' own assertions (e.g. E10's planner speedup).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent


def run_benchmark(path: Path, env: dict) -> dict:
    # Each benchmark runs in its own interpreter, so the process-wide
    # metrics registry isolates per benchmark for free; conftest dumps
    # its final snapshot wherever REPRO_METRICS_OUT points.
    metrics_path = BENCH_DIR / f".metrics_{path.stem}.json"
    env = {**env, "REPRO_METRICS_OUT": str(metrics_path)}
    start = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            path.name,
            "-q",
            "--benchmark-disable",
            "-p",
            "no:cacheprovider",
            "-o",
            "addopts=",
        ],
        cwd=BENCH_DIR,
        env=env,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - start
    metrics = {}
    try:
        metrics = json.loads(metrics_path.read_text())
    except (OSError, ValueError):
        pass
    finally:
        try:
            metrics_path.unlink()
        except OSError:
            pass
    return {
        "wall_seconds": round(elapsed, 3),
        "returncode": proc.returncode,
        "tail": proc.stdout.strip().splitlines()[-1:] if proc.stdout else [],
        "metrics": metrics,
    }


def analysis_pass() -> dict:
    """Run the static analyzer over the whole workload corpus
    in-process and report the ``analysis.*`` counter deltas plus wall
    time — the lint-cost series BENCH_pr.json tracks alongside the
    per-experiment wall clocks."""
    import repro
    from lint_corpus import corpus
    from repro.obs.metrics import default_registry

    registry = default_registry()
    before = registry.snapshot()
    start = time.perf_counter()
    programs = {}
    for name, source in sorted(corpus().items()):
        programs[name] = repro.analyze(source).summary()
    elapsed = time.perf_counter() - start
    after = registry.snapshot()
    counters = {
        key: after.get(key, 0) - before.get(key, 0)
        for key in ("analysis.runs", "analysis.errors", "analysis.warnings")
    }
    return {
        "wall_seconds": round(elapsed, 3),
        "counters": counters,
        "programs": programs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="BENCH_pr.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run full-size workloads instead of quick mode",
    )
    args = parser.parse_args(argv)

    env = dict(os.environ)
    if not args.full:
        env["REPRO_BENCH_QUICK"] = "1"
    src = str(BENCH_DIR.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    results = {}
    failed = []
    for path in sorted(BENCH_DIR.glob("bench_e*.py")):
        print(f"running {path.name} ...", flush=True)
        outcome = run_benchmark(path, env)
        results[path.stem] = outcome
        status = "ok" if outcome["returncode"] == 0 else "FAILED"
        print(f"  {status} in {outcome['wall_seconds']}s", flush=True)
        if outcome["returncode"] != 0:
            failed.append(path.name)

    print("running static-analysis pass ...", flush=True)
    sys.path.insert(0, src)
    try:
        analysis = analysis_pass()
        print(
            f"  ok in {analysis['wall_seconds']}s "
            f"({analysis['counters']['analysis.runs']} programs)",
            flush=True,
        )
    except Exception as error:  # the pass is a smoke leg, not optional
        analysis = {"error": repr(error)}
        failed.append("analysis_pass")
        print(f"  FAILED: {error!r}", flush=True)

    payload = {
        "mode": "full" if args.full else "quick",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "analysis": analysis,
        "benchmarks": results,
        "total_wall_seconds": round(
            sum(r["wall_seconds"] for r in results.values()), 3
        ),
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path} ({payload['total_wall_seconds']}s total)")
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

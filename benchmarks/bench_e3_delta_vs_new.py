"""E3 — delta guards vs. new guards (Section 3.3.3 on [LLOY 86]).

Rule chain c0 → c1 → … → c<depth> over ``width`` pre-existing chain
instances; one base insert changes exactly one instance per chain
predicate. Update constraints guarded by ``delta`` evaluate one residual
instance; guarded by ``new`` they enumerate every instance true in the
updated state — "the resulting loss in efficiency is often
considerable".

Series: per chain depth d (width fixed), time plus guard-answer and
instance counts for both guard disciplines.
"""

import pytest

from repro.integrity.checker import IntegrityChecker
from repro.workloads.deductive import rule_chain_database

from conftest import report

DEPTHS = [1, 2, 4, 8]
WIDTH = 200

_cache = {}


def workload(depth):
    if depth not in _cache:
        db, update = rule_chain_database(depth=depth, width=WIDTH)
        _cache[depth] = (db, IntegrityChecker(db), update)
    return _cache[depth]


@pytest.mark.parametrize("depth", DEPTHS)
def test_e3_delta_guard(benchmark, depth):
    _, checker, update = workload(depth)
    result = benchmark(lambda: checker.check_bdm(update))
    assert result.ok
    assert result.stats["instances_evaluated"] == 1


@pytest.mark.parametrize("depth", DEPTHS)
def test_e3_new_guard(benchmark, depth):
    _, checker, update = workload(depth)
    result = benchmark(lambda: checker.check_lloyd(update))
    assert result.ok
    assert result.stats["guard_answers"] >= WIDTH


def test_e3_report(benchmark):
    rows = []
    for depth in DEPTHS:
        _, checker, update = workload(depth)
        bdm = checker.check_bdm(update)
        lloyd = checker.check_lloyd(update)
        rows.append(
            (
                depth,
                bdm.stats["instances_evaluated"],
                lloyd.stats["guard_answers"],
                lloyd.stats["instances_evaluated"],
            )
        )
    report(
        f"E3: residual checks per update (width={WIDTH})",
        rows,
        ("depth", "delta instances", "new guard answers", "new instances"),
    )
    for depth, bdm_instances, guard_answers, lloyd_instances in rows:
        # delta checks exactly the changed instance; new checks the world.
        assert bdm_instances == 1
        assert guard_answers >= WIDTH
    benchmark(lambda: None)

"""E5 — The Section 5 worked example.

The paper walks its organization example to unsatisfiability (every way
of leading the forced department makes someone their own subordinate)
and notes that weakening constraint (3) restores finite satisfiability.
Both runs must be interactive-speed.
"""


from repro.satisfiability.checker import SatisfiabilityChecker
from repro.workloads.theorem_proving import SECTION5, SECTION5_WEAKENED

from conftest import report


def test_e5_unsatisfiable(benchmark):
    checker = SatisfiabilityChecker.from_source(SECTION5)
    result = benchmark(lambda: checker.check(max_fresh_constants=6))
    assert result.unsatisfiable


def test_e5_weakened_satisfiable(benchmark):
    checker = SatisfiabilityChecker.from_source(SECTION5_WEAKENED)
    result = benchmark(lambda: checker.check(max_fresh_constants=6))
    assert result.satisfiable


def test_e5_report(benchmark):
    rows = []
    for name, source in (
        ("section 5", SECTION5),
        ("weakened (3)", SECTION5_WEAKENED),
    ):
        checker = SatisfiabilityChecker.from_source(source)
        result = checker.check(max_fresh_constants=6)
        rows.append(
            (
                name,
                result.status,
                len(result.model) if result.model else "-",
                result.stats["assertions"],
                result.stats["backtracks"],
            )
        )
    report(
        "E5: Section 5 example",
        rows,
        ("variant", "status", "model size", "assertions", "backtracks"),
    )
    assert rows[0][1] == "unsatisfiable"
    assert rows[1][1] == "satisfiable"
    benchmark(lambda: None)

"""E11 (extension, not from the paper) — magic-sets demand transformation.

A selective query against a recursive program is the worst case for
materializing evaluation: the full canonical model of the ancestor
chain holds Θ(n²) ``anc`` facts, while a query like ``anc(X, g_k)``
(small k) only touches the k facts above ``g_k``. The magic rewrite
(``strategy="magic"``) makes bottom-up evaluation goal-directed, so the
number of *materialized* facts — the cost every downstream lookup and
join pays for — collapses from the closure size to the demanded slice.

Headline assertions:

* identical answers under ``magic`` and ``lazy`` (semantics pinned
  further by ``tests/property/test_magic_agreement.py``);
* ≥ 5× fewer derived facts for the selective query (the measured
  margin is orders of magnitude; 5× keeps the check robust);
* a wall-clock win over full lazy materialization of the closure.

A second scenario runs the integrity-check shape: a ground query
against the orders workload's derived ``open_order`` predicate, the
access pattern the checker's relevant-constraint phase issues.
"""

import os
import time

import pytest

from repro.logic.parser import parse_atom
from repro.workloads.deductive import ancestor_database
from repro.workloads.orders import OrdersWorkload

from conftest import report

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
CHAIN_SIZES = [60, 120] if QUICK else [120, 250]
TARGET = 4  # query anc(X, g4): four answers regardless of chain length


def timed(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def answers_via(db, strategy, pattern):
    """(derived-fact count, frozen answer set) under *strategy*."""
    engine = db.engine(strategy)
    answers = frozenset(
        frozenset((v.name, str(t)) for v, t in s.items())
        for s in engine.match_atom(pattern)
    )
    if strategy == "magic":
        derived = engine.magic.derived_fact_count()
    else:
        derived = len(engine._derived)
    return derived, answers


@pytest.mark.parametrize("n", CHAIN_SIZES)
def test_e11_selective_query_demand(benchmark, n):
    """The headline acceptance: ≥ 5× fewer derived facts and a
    wall-clock win on a selective recursive query."""
    db, _ = ancestor_database(n)
    pattern = parse_atom(f"anc(X, g{TARGET})")

    def run_lazy():
        fresh = db.copy()
        return answers_via(fresh, "lazy", pattern)

    def run_magic():
        fresh = db.copy()
        return answers_via(fresh, "magic", pattern)

    t_lazy, (derived_lazy, answers_lazy) = timed(run_lazy)
    t_magic, (derived_magic, answers_magic) = timed(run_magic)
    assert answers_magic == answers_lazy
    assert len(answers_magic) == TARGET
    reduction = derived_lazy / derived_magic
    speedup = t_lazy / t_magic
    report(
        f"E11: anc(X, g{TARGET}) on a {n}-chain",
        [
            ("lazy", derived_lazy, f"{t_lazy * 1e3:.2f}"),
            ("magic", derived_magic, f"{t_magic * 1e3:.2f}"),
            ("ratio", f"{reduction:.0f}x", f"{speedup:.1f}x"),
        ],
        ("strategy", "derived facts", "ms (best of 3)"),
    )
    assert reduction >= 5.0, (
        f"magic materialized {derived_magic} facts vs {derived_lazy} "
        f"for lazy — only a {reduction:.1f}x reduction"
    )
    assert speedup > 1.0, (
        f"magic not faster: {t_magic * 1e3:.2f} ms vs "
        f"{t_lazy * 1e3:.2f} ms lazy"
    )
    benchmark(run_magic)


def test_e11_ground_probe_orders_workload(benchmark):
    """Integrity-check shape: a ground probe of a derived predicate
    touches one order's slice, not every order's status."""
    workload = OrdersWorkload(n_customers=40 if QUICK else 120, seed=7)
    db = workload.build()
    atom = parse_atom("open_order(ord3_0)")

    lazy_engine = db.copy().engine("lazy")
    expected = lazy_engine.holds(atom)
    derived_lazy = len(lazy_engine._derived)

    magic_engine = db.copy().engine("magic")
    assert magic_engine.holds(atom) is expected
    derived_magic = magic_engine.magic.derived_fact_count()
    report(
        "E11: ground open_order probe",
        [
            ("lazy", derived_lazy),
            ("magic", derived_magic),
        ],
        ("strategy", "derived facts"),
    )
    assert derived_magic * 5 <= derived_lazy

    def probe():
        return db.copy().engine("magic").holds(atom)

    benchmark(probe)

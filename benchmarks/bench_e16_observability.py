"""E16 (extension, not from the paper) — observability overhead: the
metrics/health sidecar must be free when watched and near-free always.

The exporter adds two kinds of background work to a serving process:
the HTTP scrape threads (idle between polls) and the once-per-interval
window sampler (a registry snapshot folded into the sliding ring). The
acceptance criterion is that running E12's concurrent-commit workload
*with* the sidecar live — HTTP threads up, sampler ticking at 50x the
production cadence — costs at most 5% of the throughput of the
identical workload with no sidecar at all.

Trials are interleaved (base, instrumented, base, …) and compared on
best-of times so machine drift during the run cancels instead of
biasing one arm. The scrape endpoints are exercised right after each
instrumented burst (liveness under a just-loaded registry), and their
latency is reported separately — a Prometheus poll runs in *another*
process, so timing in-process GETs against the GIL-bound commit pool
would overstate its cost.
"""

import json
import os
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro.obs.export import MetricsExporter
from repro.obs.window import SlidingWindow
from repro.service.database import ManagedDatabase
from repro.workloads.relational import RelationalWorkload

from conftest import report

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
N_EMPLOYEES = 100 if QUICK else 150
N_WORKERS = 4
TXNS_PER_WORKER = 12 if QUICK else 24
TRIALS = 3
MAX_OVERHEAD = 1.05  # instrumented may cost at most 5%
SAMPLE_INTERVAL = 0.02  # sampler at 50x the production 1s cadence


def service_source():
    db = RelationalWorkload(N_EMPLOYEES, seed=3).build()
    db.add_rule("member(X, D) :- works_in(X, D)")
    db.add_constraint("forall X, D: member(X, D) -> employee(X)")
    return db.to_source()


def transaction(worker, step):
    name = f"zz{worker}_{step}"
    return [
        f"employee({name})",
        f"salary({name}, junior)",
        f"works_in({name}, d{worker % 2})",
    ]


def run_commit_burst(directory, source):
    """E12's concurrent-commit shape: stage everything, then commit
    from a worker pool through group commit; returns the commit wall
    time (staging and recovery excluded — the sidecar's cost lands on
    the hot pipeline, which is what the bound protects)."""
    db = ManagedDatabase(directory, source, sync=False, group_commit=True)
    sessions = []
    for worker in range(N_WORKERS):
        for step in range(TXNS_PER_WORKER):
            session = db.begin()
            session.stage(transaction(worker, step))
            sessions.append(session)
    per_worker = [sessions[i::N_WORKERS] for i in range(N_WORKERS)]

    def commit_all(batch):
        for session in batch:
            result = session.commit()
            assert result.ok, result

    start = time.perf_counter()
    with ThreadPoolExecutor(N_WORKERS) as pool:
        list(pool.map(commit_all, per_worker))
    elapsed = time.perf_counter() - start
    db.close()
    return elapsed


def test_e16_exporter_overhead_bounded(benchmark, tmp_path):
    """The acceptance criterion: sidecar + windowing cost ≤ 5% of
    E12-style concurrent-commit throughput."""
    source = service_source()
    base_times, instrumented_times = [], []
    for trial in range(TRIALS):
        base_times.append(
            run_commit_burst(tmp_path / f"base{trial}", source)
        )
        exporter = MetricsExporter(
            window=SlidingWindow(), sample_interval=SAMPLE_INTERVAL
        ).start()
        exporter.mark_ready()
        try:
            instrumented_times.append(
                run_commit_burst(tmp_path / f"obs{trial}", source)
            )
            # The sidecar stayed live under load: both scrape formats
            # answer, and the window saw the burst's commits.
            with urllib.request.urlopen(
                exporter.url("/metrics"), timeout=5
            ) as response:
                assert b"repro_txn_commits_total" in response.read()
            exporter.sample_now()
            with urllib.request.urlopen(
                exporter.url("/metrics.json"), timeout=5
            ) as response:
                payload = json.loads(response.read())
            assert payload["window"]["samples"] > 1
        finally:
            exporter.close()

    t_base = min(base_times)
    t_obs = min(instrumented_times)
    ratio = t_obs / t_base
    total = N_WORKERS * TXNS_PER_WORKER
    report(
        f"E16: sidecar overhead on {N_WORKERS} writers x "
        f"{TXNS_PER_WORKER} txns ({TRIALS} interleaved trials, best-of)",
        [
            ("bare pipeline", f"{t_base:.3f}", f"{total / t_base:.1f}"),
            (
                "exporter + window sampler",
                f"{t_obs:.3f}",
                f"{total / t_obs:.1f}",
            ),
            ("overhead", f"{(ratio - 1) * 100:+.1f}%", ""),
        ],
        ("mode", "seconds", "txn/s"),
    )
    assert ratio <= MAX_OVERHEAD, (
        f"observability sidecar cost {(ratio - 1) * 100:.1f}% of commit "
        f"throughput (allowed {(MAX_OVERHEAD - 1) * 100:.0f}%)"
    )

    def one_scrape():
        with urllib.request.urlopen(exporter_url, timeout=5) as response:
            response.read()

    exporter = MetricsExporter().start()
    exporter_url = exporter.url("/metrics")
    try:
        benchmark(one_scrape)
    finally:
        exporter.close()


def test_e16_scrape_latency(tmp_path):
    """Reported, not bounded: what one Prometheus poll costs against a
    registry warmed by real commits."""
    source = service_source()
    run_commit_burst(tmp_path / "warm", source)
    exporter = MetricsExporter(window=SlidingWindow()).start()
    exporter.sample_now()
    try:
        timings = {}
        for path in ("/metrics", "/metrics.json", "/healthz", "/readyz"):
            url = exporter.url(path)
            best = None
            for _ in range(10):
                start = time.perf_counter()
                try:
                    with urllib.request.urlopen(url, timeout=5) as response:
                        response.read()
                except urllib.error.HTTPError as error:
                    error.read()  # /readyz is 503 before mark_ready
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
            timings[path] = best
        report(
            "E16: scrape latency (best of 10)",
            [
                (path, f"{seconds * 1e3:.2f}")
                for path, seconds in timings.items()
            ],
            ("endpoint", "ms"),
        )
        assert all(seconds < 1.0 for seconds in timings.values())
    finally:
        exporter.close()

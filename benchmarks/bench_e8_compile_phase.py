"""E8 — Compile-phase ablations (Sections 3.3 / 3.3.1).

(a) The compile phase (potential updates + update constraints) touches
    no facts, so its cost must be flat in the database size — that is
    what lets it be precomputed per update pattern.

(b) Subsumption pruning during potential-update generation: on
    recursive rules it is what makes the closure terminate at all; on
    non-recursive chains it keeps the set small (the paper's remark
    that the test "is desirable for avoiding redundancies").
"""

import pytest

from repro.integrity.checker import IntegrityChecker
from repro.integrity.dependencies import DependencyIndex, potential_updates
from repro.workloads.deductive import (
    ancestor_database,
    fanout_database,
    rule_chain_database,
)

from conftest import report

DB_SIZES = [100, 1000, 10000]

_cache = {}


def fanout_checker(size):
    if size not in _cache:
        db, update = fanout_database(size)
        # A constraint that does mention r, so compilation has real work.
        db.add_constraint("forall X: r(X) -> vetted(X)")
        _cache[size] = (IntegrityChecker(db), update)
    return _cache[size]


@pytest.mark.parametrize("size", DB_SIZES)
def test_e8_compile_flat_in_database_size(benchmark, size):
    checker, update = fanout_checker(size)
    compiled = benchmark(lambda: checker.compile([update]))
    assert compiled.update_constraints


def test_e8_compile_report(benchmark):
    rows = []
    for size in DB_SIZES:
        checker, update = fanout_checker(size)
        compiled = checker.compile([update])
        rows.append(
            (
                size,
                len(compiled.potential),
                len(compiled.update_constraints),
            )
        )
    report(
        "E8a: compile phase output is fact-independent",
        rows,
        ("facts", "potential updates", "update constraints"),
    )
    # Identical compile output regardless of database size.
    assert len({(r[1], r[2]) for r in rows}) == 1
    benchmark(lambda: None)


def test_e8_subsumption_prunes_recursive_closure(benchmark):
    db, update = ancestor_database(10)

    def run():
        return potential_updates(db.program, update)

    out = benchmark(run)
    # The whole anc-space collapses to one most-general pattern.
    assert len(out) <= 3


def test_e8_no_subsumption_keeps_redundant_specializations(benchmark):
    db, update = ancestor_database(10)
    index = DependencyIndex(db.program)

    def run():
        return potential_updates(
            db.program,
            update,
            index,
            subsumption=False,
            iteration_limit=10000,
        )

    out = benchmark(run)
    pruned = potential_updates(db.program, update, index)
    report(
        "E8b: potential-update set size on recursive ancestor",
        [("with subsumption", len(pruned)), ("without", len(out))],
        ("variant", "set size"),
    )
    # Every extra literal is a specialization subsumed by a kept one.
    assert len(out) > len(pruned)


@pytest.mark.parametrize("depth", [4, 8])
def test_e8_subsumption_on_chains(benchmark, depth):
    db, update = rule_chain_database(depth=depth, width=1)

    def run():
        return potential_updates(db.program, update)

    out = benchmark(run)
    # One potential update per chain predicate plus the base update.
    assert len(out) == depth + 1

"""E7 — Finite-satisfiability completeness: reuse vs. classical tableaux
(Section 4, point 2).

Serial-order axiom families have tiny finite models that require
re-using an existing constant as the existential witness. The full
checker finds them immediately; the fresh-only baseline ([SMUL 68] /
[KUNG 84]) runs through any constant budget and can only report
"unknown" — the incompleteness the paper's extension repairs.
"""

import pytest

from repro.satisfiability.checker import SatisfiabilityChecker
from repro.workloads.theorem_proving import serial_order

from conftest import report

CASES = [
    ("serial", serial_order(), 1),
    ("serial+irreflexive", serial_order(irreflexive=True), 2),
    (
        "serial+irreflexive+antisym",
        serial_order(irreflexive=True, antisymmetric=True),
        3,  # 2-loops are forbidden: the smallest model is a 3-cycle
    ),
]

BUDGET = 6


@pytest.mark.parametrize(
    "name, source, model_size", CASES, ids=[c[0] for c in CASES]
)
def test_e7_with_reuse(benchmark, name, source, model_size):
    checker = SatisfiabilityChecker.from_source(source)
    result = benchmark(lambda: checker.check(max_fresh_constants=BUDGET))
    assert result.satisfiable
    assert len(result.model.facts("p")) == model_size


@pytest.mark.parametrize(
    "name, source, model_size", CASES, ids=[c[0] for c in CASES]
)
def test_e7_tableaux_baseline(benchmark, name, source, model_size):
    checker = SatisfiabilityChecker.from_source(
        source, existential_reuse=False
    )
    result = benchmark(
        lambda: checker.check(max_fresh_constants=BUDGET, deepening=False)
    )
    # The baseline burns the whole budget and cannot decide.
    assert result.status == "unknown"


def test_e7_report(benchmark):
    rows = []
    for name, source, _ in CASES:
        ours = SatisfiabilityChecker.from_source(source).check(
            max_fresh_constants=BUDGET
        )
        baseline = SatisfiabilityChecker.from_source(
            source, existential_reuse=False
        ).check(max_fresh_constants=BUDGET, deepening=False)
        rows.append(
            (
                name,
                ours.status,
                len(ours.model) if ours.model else "-",
                baseline.status,
                baseline.stats["assertions"],
            )
        )
    report(
        f"E7: finite models under constant reuse (budget={BUDGET})",
        rows,
        ("axioms", "ours", "model size", "tableaux", "tableaux asserts"),
    )
    for row in rows:
        assert row[1] == "satisfiable"
        assert row[3] == "unknown"
    benchmark(lambda: None)

"""E2 — Induced updates nobody asked about (Section 3.2, drawback 1).

Rule ``r(X) <- q(X, Y), p(Y, Z)`` with f facts ``q(·, a)``; no
constraint mentions r. Updating ``p(a, b)``:

* the paper's two-phase method compiles zero update constraints and
  never touches the facts;
* the interleaved [DECK 86]/[KOWA 87] discipline computes all f induced
  r-updates first — "the overhead is considerable if there are a lot of
  q(X, a)-facts".

Series: time and induced-update/lookup counts per fanout f.
"""

import pytest

from repro.integrity.checker import IntegrityChecker
from repro.workloads.deductive import fanout_database

from conftest import report

FANOUTS = [10, 100, 1000]

_cache = {}


def workload(f):
    if f not in _cache:
        db, update = fanout_database(f)
        _cache[f] = (db, IntegrityChecker(db), update)
    return _cache[f]


@pytest.mark.parametrize("f", FANOUTS)
def test_e2_two_phase(benchmark, f):
    _, checker, update = workload(f)
    result = benchmark(lambda: checker.check_bdm(update))
    assert result.ok
    assert result.stats["lookups"] == 0


@pytest.mark.parametrize("f", FANOUTS)
def test_e2_interleaved(benchmark, f):
    _, checker, update = workload(f)
    result = benchmark(lambda: checker.check_interleaved(update))
    assert result.ok
    assert result.stats["induced_updates"] == f + 1


def test_e2_report(benchmark):
    rows = []
    for f in FANOUTS:
        _, checker, update = workload(f)
        bdm = checker.check_bdm(update)
        inter = checker.check_interleaved(update)
        rows.append(
            (
                f,
                bdm.stats["induced_updates"],
                bdm.stats["lookups"],
                inter.stats["induced_updates"],
                inter.stats["lookups"],
            )
        )
    report(
        "E2: induced updates computed / atom lookups",
        rows,
        ("fanout", "bdm induced", "bdm lookups", "intl induced", "intl lookups"),
    )
    # Shape: two-phase is O(0) in the fanout; interleaved is O(f).
    for f, bdm_induced, bdm_lookups, intl_induced, intl_lookups in rows:
        assert bdm_induced == 0 and bdm_lookups == 0
        assert intl_induced > f
    benchmark(lambda: None)

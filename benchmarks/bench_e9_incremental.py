"""E9 (extension, not from the paper) — goal-directed delta vs. DRed.

The conclusion calls for further work on the evaluation phase; DRed
(delete–re-derive) is the classical materialized-view answer. This
ablation contrasts the two change-computation disciplines on the
recursive ancestor workload:

* ``DeltaEvaluator`` — goal-directed, computes only demanded changes,
  no materialized model to keep;
* ``MaintainedModel`` — maintains the full canonical model; pays more
  per update but leaves a queryable materialization behind.

Both must report the *same* net change set (property-tested in
``tests/datalog/test_incremental.py``); here we measure cost.
"""

import pytest

from repro.datalog.incremental import MaintainedModel
from repro.integrity.delta_eval import DeltaEvaluator
from repro.workloads.deductive import ancestor_database

from conftest import report

CHAIN_LENGTHS = [10, 30, 100]

_cache = {}


def workload(n):
    if n not in _cache:
        db, update = ancestor_database(n)
        _cache[n] = (db, update)
    return _cache[n]


@pytest.mark.parametrize("n", CHAIN_LENGTHS)
def test_e9_delta(benchmark, n):
    db, update = workload(n)

    def run():
        evaluator = DeltaEvaluator(db, update)
        return evaluator.induced_updates()

    induced = benchmark(run)
    # Appending to a length-n chain creates n+1 new anc pairs + the base.
    assert len(induced) == n + 2


@pytest.mark.parametrize("n", CHAIN_LENGTHS)
def test_e9_dred(benchmark, n):
    db, update = workload(n)
    base_facts = db.facts.copy()

    def run():
        maintained = MaintainedModel(base_facts, db.program)
        inserted, deleted = maintained.apply([update])
        return inserted, deleted

    inserted, deleted = benchmark(run)
    assert len(inserted) == n + 2
    assert not deleted


def test_e9_report(benchmark):
    rows = []
    for n in CHAIN_LENGTHS:
        db, update = workload(n)
        delta = DeltaEvaluator(db, update)
        induced = delta.induced_updates()
        maintained = MaintainedModel(db.facts.copy(), db.program)
        inserted, deleted = maintained.apply([update])
        assert {l.atom for l in induced if l.positive} == inserted
        rows.append((n, len(induced), len(inserted), len(deleted)))
    report(
        "E9: net change sets agree (delta vs DRed)",
        rows,
        ("chain", "delta changes", "dred inserts", "dred deletes"),
    )
    benchmark(lambda: None)

"""E13 (extension, not from the paper) — set-at-a-time batched joins.

Every inference method funnels through the body-join kernel, so PR 4
rebuilt it as a batch pipeline: binding relations flow through each
literal as value-tuple chunks, positive literals are hash joins probing
the stores' composite group indexes once per distinct key, negatives
are memoized anti-joins. This experiment pins the wall-clock win of
``exec_mode="batch"`` over the seed's tuple-at-a-time oracle, holding
the join *plan* fixed so only the execution model varies (the mirror
image of E10, which varies the plan while holding the execution model
fixed):

* **hub** — ``hit(X, Z) :- e1(X, Y), e2(Y, Z), rare(Z)`` in source
  order: ``e1`` fans into a small set of hub ``Y`` values, so the
  binding relation is wide and the tuple path re-probes ``e2``/``rare``
  once per binding while the batch path probes once per distinct hub
  and serves every duplicate key from the probe memo. The headline
  assertion — batch at least 3× faster — is deliberately far below the
  measured margin (~8–13×) so the check stays robust on noisy CI
  runners.

* **star** — ``wide(X, A, B) :- src(X), a(X, A), b(X, B), ok(X)``
  under the default greedy plan: an intrinsically wide output
  (``|src| × f²`` tuples), where the batch win comes from building
  head atoms straight from value rows instead of composing a
  substitution per intermediate binding. Asserted ≥ 1.5× (measured
  ~2.5–3×; the shared model-insertion cost bounds the ratio).

Both modes must produce identical models (asserted here; the
differential harness in ``tests/property/test_batch_agreement.py``
pins answers, verdicts and DRed end-states besides).
"""

import os
import time

import pytest

from repro.datalog.bottomup import compute_model
from repro.datalog.facts import FactStore
from repro.datalog.program import Program, Rule
from repro.logic.formulas import Atom
from repro.logic.parser import parse_rule
from repro.logic.terms import Constant
from repro.obs.trace import trace_query

from conftest import report

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
HUB_SIZES = [300, 600] if QUICK else [600, 1200]
STAR_SIZES = [200] if QUICK else [300, 500]
FANOUT = 5
HUBS = 25


def hub_workload(n):
    """e1/2 wide with duplicate keys into HUBS hubs; e2 fans each hub
    out; rare/1 keeps the output (and its shared insertion cost) tiny."""
    facts = FactStore()
    for i in range(n):
        x = Constant(f"x{i}")
        for j in range(FANOUT):
            facts.add(Atom("e1", (x, Constant(f"y{(i + j) % HUBS}"))))
    for k in range(HUBS):
        y = Constant(f"y{k}")
        for m in range(FANOUT):
            facts.add(Atom("e2", (y, Constant(f"z{k}_{m}"))))
    for k in range(0, HUBS, 7):
        facts.add(Atom("rare", (Constant(f"z{k}_0"),)))
    program = Program([Rule.from_parsed(parse_rule(
        "hit(X, Z) :- e1(X, Y), e2(Y, Z), rare(Z)"
    ))])
    return facts, program


def star_workload(n):
    """src/1 with n members, each fanning into FANOUT a- and b-facts."""
    facts = FactStore()
    for i in range(n):
        x = Constant(f"x{i}")
        facts.add(Atom("src", (x,)))
        facts.add(Atom("ok", (x,)))
        for j in range(FANOUT):
            facts.add(Atom("a", (x, Constant(f"a{i}_{j}"))))
            facts.add(Atom("b", (x, Constant(f"b{i}_{j}"))))
    program = Program([Rule.from_parsed(parse_rule(
        "wide(X, A, B) :- src(X), a(X, A), b(X, B), ok(X)"
    ))])
    return facts, program


def timed(fn, repeats=3):
    """Best-of-*repeats* wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.parametrize("n", HUB_SIZES)
def test_e13_hub_join_speedup(benchmark, n):
    """The headline acceptance: >= 3x on the duplicate-key wide join."""
    facts, program = hub_workload(n)
    t_tuple, m_tuple = timed(
        lambda: compute_model(facts, program, "source", "tuple")
    )
    t_batch, m_batch = timed(
        lambda: compute_model(facts, program, "source", "batch")
    )
    assert set(m_tuple) == set(m_batch)
    assert m_batch.count("hit") > 0
    speedup = t_tuple / t_batch
    report(
        f"E13: hub join, n={n}, fanout={FANOUT}, hubs={HUBS}",
        [("tuple", f"{t_tuple * 1e3:.2f}"),
         ("batch", f"{t_batch * 1e3:.2f}"),
         ("speedup", f"{speedup:.1f}x")],
        ("exec", "ms (best of 3)"),
    )
    assert speedup >= 3.0, (
        f"batch exec only {speedup:.2f}x faster than tuple "
        f"(tuple {t_tuple * 1e3:.2f} ms, batch {t_batch * 1e3:.2f} ms)"
    )
    benchmark(lambda: compute_model(facts, program, "source", "batch"))


@pytest.mark.parametrize("n", STAR_SIZES)
def test_e13_star_join_speedup(benchmark, n):
    """Wide-output star join under the default greedy plan."""
    facts, program = star_workload(n)
    t_tuple, m_tuple = timed(
        lambda: compute_model(facts, program, "greedy", "tuple")
    )
    t_batch, m_batch = timed(
        lambda: compute_model(facts, program, "greedy", "batch")
    )
    assert set(m_tuple) == set(m_batch)
    assert m_batch.count("wide") == n * FANOUT * FANOUT
    speedup = t_tuple / t_batch
    report(
        f"E13: star join, n={n}, fanout={FANOUT}",
        [("tuple", f"{t_tuple * 1e3:.2f}"),
         ("batch", f"{t_batch * 1e3:.2f}"),
         ("speedup", f"{speedup:.1f}x")],
        ("exec", "ms (best of 3)"),
    )
    # The output (and its shared insertion cost) scales with the join
    # here, bounding the ratio — the assertion guards the win without
    # inviting CI flakes.
    assert speedup >= 1.5
    benchmark(lambda: compute_model(facts, program, "greedy", "batch"))


def test_e13_tracing_overhead():
    """An *active* QueryTrace (the worst case — tracing off is a single
    ``current_trace() is None`` check per site) must cost <= 10% on the
    hub join, the workload where the kernel's per-chunk accounting is
    densest."""
    facts, program = hub_workload(HUB_SIZES[0])

    def untraced():
        return compute_model(facts, program, "source", "batch")

    def traced():
        with trace_query("e13 hub join"):
            return compute_model(facts, program, "source", "batch")

    # Warm both legs, then interleave the measurements so clock drift
    # and cache warm-up hit both equally (a sequential best-of skews
    # whichever leg runs first).
    m_plain, m_traced = untraced(), traced()
    t_plain = t_traced = float("inf")
    for _ in range(7):
        start = time.perf_counter()
        untraced()
        t_plain = min(t_plain, time.perf_counter() - start)
        start = time.perf_counter()
        traced()
        t_traced = min(t_traced, time.perf_counter() - start)
    assert set(m_plain) == set(m_traced)
    overhead = t_traced / t_plain
    report(
        f"E13: tracing overhead, n={HUB_SIZES[0]}",
        [("untraced", f"{t_plain * 1e3:.2f}"),
         ("traced", f"{t_traced * 1e3:.2f}"),
         ("overhead", f"{overhead:.3f}x")],
        ("mode", "ms (best of 7)"),
    )
    assert overhead <= 1.10, (
        f"active tracing costs {overhead:.3f}x on the hub join "
        f"(untraced {t_plain * 1e3:.2f} ms, traced {t_traced * 1e3:.2f} ms)"
    )

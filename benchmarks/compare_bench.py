"""Benchmark-regression gate: diff two ``BENCH_pr.json`` artifacts.

CI runs every PR's benchmarks (``run_all.py``) and uploads the result;
this script compares the fresh artifact against the previous one (the
latest successful run on the default branch) and flags per-experiment
wall-clock regressions above a threshold.

Usage::

    python benchmarks/compare_bench.py BENCH_prev.json BENCH_pr.json \
        [--threshold 1.5] [--min-seconds 0.5]

Exit status 1 when any experiment regressed more than *threshold*× —
or when the *current* artifact is missing or malformed (this run fully
controls it; an unreadable artifact must not silently disable the
gate). A missing/unreadable *baseline* skips the comparison with exit
0: a fresh repository has no history to regress against. Experiments
faster than *min-seconds* in the baseline are reported but never fail
the gate: at sub-second scale, runner noise swamps real regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: Path):
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        print(f"note: cannot read {path}: {error}")
        return None
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict):
        print(f"note: {path} has no 'benchmarks' mapping")
        return None
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="previous BENCH_pr.json")
    parser.add_argument("current", type=Path, help="this PR's BENCH_pr.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="fail when current/baseline exceeds this ratio "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.5,
        help="ignore experiments whose baseline is below this many "
        "seconds (runner noise; default: %(default)s)",
    )
    args = parser.parse_args(argv)

    current = load(args.current)
    if current is None:
        print(
            f"FAILED: current artifact {args.current} is missing or "
            f"malformed",
            file=sys.stderr,
        )
        return 1
    baseline = load(args.baseline)
    if baseline is None:
        print("benchmark comparison skipped (no baseline to compare against)")
        return 0
    if baseline.get("mode") != current.get("mode"):
        print(
            f"note: comparing mode {baseline.get('mode')!r} baseline "
            f"against {current.get('mode')!r} current"
        )

    regressions = []
    malformed = []
    rows = []
    for name, entry in sorted(current["benchmarks"].items()):
        now = entry.get("wall_seconds")
        if now is None:
            # The current artifact is this run's responsibility: a
            # schema drift must fail the gate, not disable it.
            malformed.append(name)
            rows.append((name, "-", "-", "MALFORMED (no wall_seconds)"))
            continue
        before_entry = baseline["benchmarks"].get(name)
        if before_entry is None:
            rows.append((name, "-", f"{now:.2f}", "new"))
            continue
        before = before_entry.get("wall_seconds")
        if not before:
            rows.append((name, f"{before}", f"{now}", "no baseline"))
            continue
        ratio = now / before
        flag = ""
        if ratio > args.threshold:
            if before >= args.min_seconds:
                flag = "REGRESSION"
                regressions.append((name, before, now, ratio))
            else:
                flag = "noisy (ignored)"
        rows.append((name, f"{before:.2f}", f"{now:.2f}", f"{ratio:.2f}x {flag}".strip()))
    dropped = sorted(set(baseline["benchmarks"]) - set(current["benchmarks"]))
    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'experiment'.ljust(width)}  baseline  current  ratio")
    for name, before, now, verdict in rows:
        print(f"{name.ljust(width)}  {before:>8}  {now:>7}  {verdict}")
    for name in dropped:
        print(f"{name.ljust(width)}  (dropped from current run)")
    if malformed:
        print(
            f"\nFAILED: {len(malformed)} current entr(ies) lack "
            f"wall_seconds: {', '.join(malformed)}",
            file=sys.stderr,
        )
        return 1
    if regressions:
        print(
            f"\nFAILED: {len(regressions)} experiment(s) regressed more "
            f"than {args.threshold}x:",
            file=sys.stderr,
        )
        for name, before, now, ratio in regressions:
            print(
                f"  {name}: {before:.2f}s -> {now:.2f}s ({ratio:.2f}x)",
                file=sys.stderr,
            )
        return 1
    print("\nno wall-clock regressions above threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E14 (extension, not from the paper) — supplementary-magic prefix
sharing over batch relations.

The classic magic rewrite re-derives every rule-body prefix once per
consumer: with k intensional subgoals, the longest prefix is joined by
k magic rules plus the guarded rule — and again on *every* semi-naive
round a delta touches the rule. The supplementary rewrite (PR 5, the
default) materializes each prefix once per split point as a ``sup@…``
predicate whose relation both the magic rule it seeds and the next
body segment consume; under the set-at-a-time kernel its semi-naive
delta flows straight into the consumer joins as a named
``(schema, rows)`` relation, so a prefix is evaluated exactly once per
saturation pass instead of once per consumer per round.

The workload is a *multi-consumer recursive* query: a wide extensional
prefix (``src ⋈ hop``) feeding two recursive subgoals, over a
transitive closure whose own recursive rule has a shared
``link``-prefix as well::

    res(X, Y) :- src(X, A), hop(A, B), reach(B, M), reach(M, Y)
    reach(X, Y) :- link(X, Y)
    reach(X, Y) :- link(X, Z), reach(Z, Y)

Cost is pinned on deterministic *prefix join probes*: composite-index
probes (``bucket``) of the prefix predicates ``src``/``hop``/``link``
on the extensional store. The headline assertion — supplementary does
at least 2× fewer prefix probes — is deliberately far below the
measured margin (~100–300×, because sharing also compounds across
semi-naive rounds) so the check stays robust; wall clock must not
regress (measured ~5–10× faster). Both variants must produce identical
answers (asserted here; the differential harness in
``tests/property/test_batch_agreement.py`` sweeps supplementary ×
exec × strategy × plan besides).
"""

import os
import time

import pytest

from repro.datalog.facts import FactStore
from repro.datalog.magic import MagicEvaluator
from repro.datalog.program import Program, Rule
from repro.logic.parser import parse_atom, parse_rule

from conftest import report

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SIZES = [(80, 40)] if QUICK else [(80, 40), (150, 80)]

#: The extensional predicates making up the shared rule prefixes.
PREFIX_PREDS = ("src", "hop", "link")


class ProbeCountingStore(FactStore):
    """A FactStore counting composite-index probes per predicate."""

    def __init__(self, facts=()):
        self.probes_by_pred = {}
        super().__init__(facts)

    def bucket(self, pred, positions, key):
        self.probes_by_pred[pred] = self.probes_by_pred.get(pred, 0) + 1
        return super().bucket(pred, positions, key)

    def prefix_probes(self) -> int:
        return sum(self.probes_by_pred.get(p, 0) for p in PREFIX_PREDS)


def workload(chain, fanout):
    """A `chain`-long link chain under reach, and `fanout` src/hop
    pairs funnelling one query constant into the chain's head region —
    the multi-consumer rule joins the src ⋈ hop prefix against two
    recursive reach subgoals."""
    facts = ProbeCountingStore()
    for i in range(chain):
        facts.add(parse_atom(f"link(c{i}, c{i + 1})"))
    for j in range(fanout):
        facts.add(parse_atom(f"src(s0, a{j})"))
        facts.add(parse_atom(f"hop(a{j}, c{j % 20})"))
    program = Program(
        Rule.from_parsed(parse_rule(text))
        for text in (
            "reach(X, Y) :- link(X, Y)",
            "reach(X, Y) :- link(X, Z), reach(Z, Y)",
            "res(X, Y) :- src(X, A), hop(A, B), reach(B, M), reach(M, Y)",
        )
    )
    return facts, program


def drive(chain, fanout, supplementary, repeats=3):
    """Best-of-*repeats* wall time (the repo's bench convention; each
    repeat rebuilds store and evaluator, so saturation is always cold).
    Probe counts are deterministic per run — reported from the last."""
    best = float("inf")
    answers = probes = None
    for _ in range(repeats):
        facts, program = workload(chain, fanout)
        evaluator = MagicEvaluator(
            facts, program, supplementary=supplementary
        )
        start = time.perf_counter()
        answers = sorted(
            map(str, evaluator.answers(parse_atom("res(s0, Y)")))
        )
        best = min(best, time.perf_counter() - start)
        probes = facts.prefix_probes()
    return answers, best, probes


@pytest.mark.parametrize("chain, fanout", SIZES)
def test_e14_supplementary_prefix_sharing(benchmark, chain, fanout):
    """The headline acceptance: >= 2x fewer prefix join probes, no
    wall-clock regression, identical answers."""
    sup_answers, sup_time, sup_probes = drive(chain, fanout, True)
    classic_answers, classic_time, classic_probes = drive(
        chain, fanout, False
    )
    assert sup_answers == classic_answers
    assert len(sup_answers) > 0
    probe_ratio = classic_probes / max(sup_probes, 1)
    report(
        f"E14: supplementary magic, chain={chain}, fanout={fanout}",
        [
            ("supplementary", f"{sup_time * 1e3:.1f}", sup_probes),
            ("classic", f"{classic_time * 1e3:.1f}", classic_probes),
            ("ratio", f"{classic_time / sup_time:.1f}x",
             f"{probe_ratio:.1f}x"),
        ],
        ("rewrite", "ms (best of 3)", "prefix probes"),
    )
    # The acceptance bar: prefixes evaluated at least twice as rarely.
    assert probe_ratio >= 2.0, (
        f"supplementary rewrite only cut prefix probes by "
        f"{probe_ratio:.2f}x ({classic_probes} -> {sup_probes})"
    )
    # And sharing must never cost wall clock (measured ~5-10x faster;
    # the slack absorbs CI timer noise on the sub-second legs).
    assert sup_time <= classic_time * 1.25
    benchmark(lambda: drive(chain, fanout, True, repeats=1))

"""E10 (extension, not from the paper) — selectivity-driven join planning.

Every inference method reduces to conjunctive-body evaluation, so the
join order is the hot path of the whole system. This experiment pits
the two plans against each other on bodies whose *source order* is
adversarial:

* **skewed** — ``hit(X, Y) :- big(X, Y), small(Y)`` with ``big`` huge
  and ``small`` tiny: source order scans ``big`` and probes ``small``
  per fact; the greedy plan enumerates ``small`` and probes ``big``
  through its argument index.

* **cross product** — ``joined(X, Y) :- p(X), q(Y), link(X, Y)``:
  source order materializes the p × q cross product before ``link``
  filters it; the greedy plan visits ``link`` as soon as ``X`` is
  bound, never leaving the join graph.

Both plans must produce identical models (asserted here and
property-tested in ``tests/property/test_planner_properties.py``); the
win is wall-clock only. The headline assertion — greedy at least 3×
faster on the skewed body — is measured under the *tuple* execution
model, where join order is the entire cost (measured 10–14×) and the
margin stays far above the bar on noisy CI runners. Under the default
batch model the per-key probe memo absorbs most of the skew (source
order probes ``small`` once per distinct key, not once per fact), so
the same contrast is real but bounded: asserted ≥ 1.5× (measured
~2.5–3×).
"""

import os
import time

import pytest

from repro.datalog.bottomup import compute_model
from repro.datalog.facts import FactStore
from repro.datalog.program import Program, Rule
from repro.logic.formulas import Atom
from repro.logic.parser import parse_rule
from repro.logic.terms import Constant

from conftest import report

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SKEW_SIZES = [400, 1000] if QUICK else [1000, 3000]
CROSS_SIZES = [60, 120] if QUICK else [120, 250]
SMALL = 3


def skewed_workload(n):
    """big/2 with n facts; small/1 with SMALL facts touching rare keys."""
    facts = FactStore()
    for i in range(n):
        facts.add(Atom("big", (Constant(f"x{i}"), Constant(f"y{i}"))))
    for i in range(SMALL):
        facts.add(Atom("small", (Constant(f"y{i * (n // SMALL)}"),)))
    program = Program([Rule.from_parsed(parse_rule(
        "hit(X, Y) :- big(X, Y), small(Y)"
    ))])
    return facts, program


def cross_workload(n):
    """p/1 and q/1 with n facts each; link/2 sparse (n edges)."""
    facts = FactStore()
    for i in range(n):
        facts.add(Atom("p", (Constant(f"a{i}"),)))
        facts.add(Atom("q", (Constant(f"b{i}"),)))
        facts.add(Atom("link", (Constant(f"a{i}"), Constant(f"b{i}"))))
    program = Program([Rule.from_parsed(parse_rule(
        "joined(X, Y) :- p(X), q(Y), link(X, Y)"
    ))])
    return facts, program


def timed(fn, repeats=3):
    """Best-of-*repeats* wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.parametrize("n", SKEW_SIZES)
def test_e10_skewed_speedup(benchmark, n):
    """The headline acceptance: >= 3x on the skewed body, measured
    under the tuple execution model, where join order is the whole
    cost (measured 10-14x). Under the default batch model the probe
    memo absorbs most of the skew — the source order probes ``small``
    once per *distinct* key, not once per fact — so the plan win is
    real but bounded (~2.5-3x measured): asserted >= 1.5x separately
    rather than letting a deliberately-weakened baseline carry the
    headline."""
    facts, program = skewed_workload(n)
    t_source, m_source = timed(
        lambda: compute_model(facts, program, "source", "tuple")
    )
    t_greedy, m_greedy = timed(
        lambda: compute_model(facts, program, "greedy", "tuple")
    )
    assert set(m_source) == set(m_greedy)
    assert m_greedy.count("hit") == SMALL
    t_source_batch, m_source_batch = timed(
        lambda: compute_model(facts, program, "source", "batch")
    )
    t_greedy_batch, m_greedy_batch = timed(
        lambda: compute_model(facts, program, "greedy", "batch")
    )
    assert set(m_source_batch) == set(m_greedy_batch) == set(m_greedy)
    speedup = t_source / t_greedy
    batch_speedup = t_source_batch / t_greedy_batch
    report(
        f"E10: skewed join, |big|={n}, |small|={SMALL}",
        [("source (tuple)", f"{t_source * 1e3:.2f}"),
         ("greedy (tuple)", f"{t_greedy * 1e3:.2f}"),
         ("source (batch)", f"{t_source_batch * 1e3:.2f}"),
         ("greedy (batch)", f"{t_greedy_batch * 1e3:.2f}"),
         ("speedup", f"{speedup:.1f}x tuple, {batch_speedup:.1f}x batch")],
        ("plan", "ms (best of 3)"),
    )
    assert batch_speedup >= 1.5, (
        f"greedy plan only {batch_speedup:.2f}x faster than source "
        f"order under batch exec"
    )
    assert speedup >= 3.0, (
        f"greedy plan only {speedup:.2f}x faster than source order "
        f"(source {t_source * 1e3:.2f} ms, greedy {t_greedy * 1e3:.2f} ms)"
    )
    benchmark(lambda: compute_model(facts, program, "greedy"))


@pytest.mark.parametrize("n", CROSS_SIZES)
def test_e10_cross_product_avoidance(benchmark, n):
    facts, program = cross_workload(n)
    t_source, m_source = timed(lambda: compute_model(facts, program, "source"))
    t_greedy, m_greedy = timed(lambda: compute_model(facts, program, "greedy"))
    assert set(m_source) == set(m_greedy)
    assert m_greedy.count("joined") == n
    speedup = t_source / t_greedy
    report(
        f"E10: cross-product body, n={n}",
        [("source", f"{t_source * 1e3:.2f}"),
         ("greedy", f"{t_greedy * 1e3:.2f}"),
         ("speedup", f"{speedup:.1f}x")],
        ("plan", "ms (best of 3)"),
    )
    # Source order is quadratic here, greedy stays linear in the edges;
    # the margin grows with n, so even the small quick sizes clear 3x.
    assert speedup >= 3.0
    benchmark(lambda: compute_model(facts, program, "greedy"))

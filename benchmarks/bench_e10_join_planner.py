"""E10 (extension, not from the paper) — selectivity-driven join planning.

Every inference method reduces to conjunctive-body evaluation, so the
join order is the hot path of the whole system. This experiment pits
the two plans against each other on bodies whose *source order* is
adversarial:

* **skewed** — ``hit(X, Y) :- big(X, Y), small(Y)`` with ``big`` huge
  and ``small`` tiny: source order scans ``big`` and probes ``small``
  per fact; the greedy plan enumerates ``small`` and probes ``big``
  through its argument index.

* **cross product** — ``joined(X, Y) :- p(X), q(Y), link(X, Y)``:
  source order materializes the p × q cross product before ``link``
  filters it; the greedy plan visits ``link`` as soon as ``X`` is
  bound, never leaving the join graph.

Both plans must produce identical models (asserted here and
property-tested in ``tests/property/test_planner_properties.py``); the
win is wall-clock only. The headline assertion — greedy at least 3×
faster on the skewed body — is deliberately far below the measured
margin so the check stays robust on noisy CI runners.
"""

import os
import time

import pytest

from repro.datalog.bottomup import compute_model
from repro.datalog.facts import FactStore
from repro.datalog.program import Program, Rule
from repro.logic.formulas import Atom
from repro.logic.parser import parse_rule
from repro.logic.terms import Constant

from conftest import report

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SKEW_SIZES = [400, 1000] if QUICK else [1000, 3000]
CROSS_SIZES = [60, 120] if QUICK else [120, 250]
SMALL = 3


def skewed_workload(n):
    """big/2 with n facts; small/1 with SMALL facts touching rare keys."""
    facts = FactStore()
    for i in range(n):
        facts.add(Atom("big", (Constant(f"x{i}"), Constant(f"y{i}"))))
    for i in range(SMALL):
        facts.add(Atom("small", (Constant(f"y{i * (n // SMALL)}"),)))
    program = Program([Rule.from_parsed(parse_rule(
        "hit(X, Y) :- big(X, Y), small(Y)"
    ))])
    return facts, program


def cross_workload(n):
    """p/1 and q/1 with n facts each; link/2 sparse (n edges)."""
    facts = FactStore()
    for i in range(n):
        facts.add(Atom("p", (Constant(f"a{i}"),)))
        facts.add(Atom("q", (Constant(f"b{i}"),)))
        facts.add(Atom("link", (Constant(f"a{i}"), Constant(f"b{i}"))))
    program = Program([Rule.from_parsed(parse_rule(
        "joined(X, Y) :- p(X), q(Y), link(X, Y)"
    ))])
    return facts, program


def timed(fn, repeats=3):
    """Best-of-*repeats* wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.parametrize("n", SKEW_SIZES)
def test_e10_skewed_speedup(benchmark, n):
    """The headline acceptance: >= 3x on the skewed body."""
    facts, program = skewed_workload(n)
    t_source, m_source = timed(lambda: compute_model(facts, program, "source"))
    t_greedy, m_greedy = timed(lambda: compute_model(facts, program, "greedy"))
    assert set(m_source) == set(m_greedy)
    assert m_greedy.count("hit") == SMALL
    speedup = t_source / t_greedy
    report(
        f"E10: skewed join, |big|={n}, |small|={SMALL}",
        [("source", f"{t_source * 1e3:.2f}"),
         ("greedy", f"{t_greedy * 1e3:.2f}"),
         ("speedup", f"{speedup:.1f}x")],
        ("plan", "ms (best of 3)"),
    )
    assert speedup >= 3.0, (
        f"greedy plan only {speedup:.2f}x faster than source order "
        f"(source {t_source * 1e3:.2f} ms, greedy {t_greedy * 1e3:.2f} ms)"
    )
    benchmark(lambda: compute_model(facts, program, "greedy"))


@pytest.mark.parametrize("n", CROSS_SIZES)
def test_e10_cross_product_avoidance(benchmark, n):
    facts, program = cross_workload(n)
    t_source, m_source = timed(lambda: compute_model(facts, program, "source"))
    t_greedy, m_greedy = timed(lambda: compute_model(facts, program, "greedy"))
    assert set(m_source) == set(m_greedy)
    assert m_greedy.count("joined") == n
    speedup = t_source / t_greedy
    report(
        f"E10: cross-product body, n={n}",
        [("source", f"{t_source * 1e3:.2f}"),
         ("greedy", f"{t_greedy * 1e3:.2f}"),
         ("speedup", f"{speedup:.1f}x")],
        ("plan", "ms (best of 3)"),
    )
    # Source order is quadratic here, greedy stays linear in the edges;
    # the margin grows with n, so even the small quick sizes clear 3x.
    assert speedup >= 3.0
    benchmark(lambda: compute_model(facts, program, "greedy"))

"""E6 — Theorem-proving benchmarks (Section 6's "promising efficiency
… on well-known benchmark examples from the theorem-proving
literature").

The SATCHMO line this paper builds on used Schubert's steamroller and
relatives. Refutation problems run in the classical-tableaux
configuration (fresh-only existentials — refutation-complete and the
SATCHMO setting); the satisfiable problems also exercise the reuse
alternatives.
"""

import pytest

from repro.satisfiability.checker import SatisfiabilityChecker, check_satisfiability
from repro.workloads.theorem_proving import (
    cycle_coloring,
    pigeonhole,
    steamroller,
)

from conftest import report


def test_e6_steamroller_refutation(benchmark):
    checker = SatisfiabilityChecker.from_source(
        steamroller(), existential_reuse=False
    )
    result = benchmark(
        lambda: checker.check(
            max_fresh_constants=10, deepening=False, max_levels=60
        )
    )
    assert result.unsatisfiable


@pytest.mark.parametrize("n", [2, 3, 4])
def test_e6_pigeonhole(benchmark, n):
    result = benchmark(
        lambda: check_satisfiability(pigeonhole(n), max_fresh_constants=0)
    )
    assert result.unsatisfiable


@pytest.mark.parametrize(
    "length, expected", [(4, "satisfiable"), (5, "unsatisfiable"), (6, "satisfiable")]
)
def test_e6_cycle_coloring(benchmark, length, expected):
    result = benchmark(
        lambda: check_satisfiability(
            cycle_coloring(length), max_fresh_constants=0
        )
    )
    assert result.status == expected


def test_e6_report(benchmark):
    rows = []
    checker = SatisfiabilityChecker.from_source(
        steamroller(), existential_reuse=False
    )
    result = checker.check(max_fresh_constants=10, deepening=False, max_levels=60)
    rows.append(
        (
            "steamroller (refute)",
            result.status,
            result.stats["assertions"],
            result.stats["lookups"],
        )
    )
    for n in (2, 3, 4):
        result = check_satisfiability(pigeonhole(n), max_fresh_constants=0)
        rows.append(
            (
                f"pigeonhole({n + 1}->{n})",
                result.status,
                result.stats["assertions"],
                result.stats["lookups"],
            )
        )
    for length in (4, 5):
        result = check_satisfiability(
            cycle_coloring(length), max_fresh_constants=0
        )
        rows.append(
            (
                f"2-colour C{length}",
                result.status,
                result.stats["assertions"],
                result.stats["lookups"],
            )
        )
    report(
        "E6: theorem-proving problems",
        rows,
        ("problem", "status", "assertions", "lookups"),
    )
    assert rows[0][1] == "unsatisfiable"
    benchmark(lambda: None)

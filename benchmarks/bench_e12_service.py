"""E12 (extension, not from the paper) — the transactional service:
concurrent commit throughput and crash-recovery time.

The commit pipeline runs the paper's integrity check as an admission
gate. Its dominant fixed cost per commit is evaluation state: with
rules in the database, a gate check materializes the dependency
closure of every derived predicate the constraints mention (the
``member``/``colleague`` layer here), and each commit additionally
pays a WAL fsync and a DRed maintenance pass. Group commit merges the
mutually non-conflicting transactions of concurrent writers into ONE
gate check over the merged transaction (sound because disjoint write
keys commute; exactly the shared-evaluation argument of Section 3.2
and the E4 benchmark), ONE atomic batch record with one fsync, and ONE
maintenance pass.

Headline assertions:

* ≥ 2× commit throughput for non-conflicting concurrent writers
  (thread pool, group commit) vs the same transactions committed
  serially (group commit disabled) — the acceptance criterion;
  measured margin is typically 3–6×;
* identical final state both ways (same facts, same LSN, every
  transaction admitted);
* recovery replays the WAL into the exact committed state (model
  pinned against a from-scratch recomputation), and a checkpoint
  reduces replay to zero records; both recovery paths' wall times are
  reported (which is cheaper depends on model size vs log length —
  the checkpoint bounds *replay*, not parsing).
"""

import os
import shutil
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro.datalog.bottomup import compute_model
from repro.service.database import ManagedDatabase
from repro.workloads.relational import RelationalWorkload

from conftest import report

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
N_EMPLOYEES = 150 if QUICK else 300
N_WORKERS = 8 if QUICK else 8
TXNS_PER_WORKER = 4 if QUICK else 6
REQUIRED_SPEEDUP = 2.0


def service_source():
    """The relational workload plus a derived layer the constraints
    mention — the shape that makes gate checks pay for evaluation
    state."""
    db = RelationalWorkload(N_EMPLOYEES, seed=3).build()
    db.add_rule("member(X, D) :- works_in(X, D)")
    db.add_rule("colleague(X, Y) :- member(X, D), member(Y, D)")
    db.add_constraint("forall X, D: member(X, D) -> employee(X)")
    db.add_constraint("forall X, Y: colleague(X, Y) -> employee(X)")
    return db.to_source()


def transaction(worker, step):
    name = f"zz{worker}_{step}"
    return [
        f"employee({name})",
        f"salary({name}, junior)",
        f"works_in({name}, d{worker % 2})",
    ]


def stage_all(db):
    """Open one session per (worker, step): the concurrent writers'
    in-flight transactions, all mutually non-conflicting."""
    sessions = []
    for worker in range(N_WORKERS):
        for step in range(TXNS_PER_WORKER):
            session = db.begin()
            session.stage(transaction(worker, step))
            sessions.append(session)
    return sessions


def run_serialized(directory, source):
    db = ManagedDatabase(directory, source, sync=True, group_commit=False)
    sessions = stage_all(db)
    start = time.perf_counter()
    for session in sessions:
        result = session.commit()
        assert result.ok, result
    elapsed = time.perf_counter() - start
    stats = db.stats()
    db.close()
    return elapsed, stats


def run_concurrent(directory, source):
    db = ManagedDatabase(directory, source, sync=True, group_commit=True)
    sessions = stage_all(db)
    per_worker = [sessions[i::N_WORKERS] for i in range(N_WORKERS)]

    def worker(batch):
        for session in batch:
            result = session.commit()
            assert result.ok, result

    start = time.perf_counter()
    with ThreadPoolExecutor(N_WORKERS) as pool:
        list(pool.map(worker, per_worker))
    elapsed = time.perf_counter() - start
    stats = db.stats()
    db.close()
    return elapsed, stats


def test_e12_concurrent_commit_throughput(benchmark, tmp_path):
    """The acceptance criterion: ≥ 2× throughput from group commit for
    non-conflicting concurrent writers."""
    source = service_source()
    total = N_WORKERS * TXNS_PER_WORKER
    t_serial, stats_serial = run_serialized(tmp_path / "serial", source)
    t_concurrent, stats_concurrent = run_concurrent(
        tmp_path / "concurrent", source
    )
    assert stats_serial["txn.commits"] == total
    assert stats_concurrent["txn.commits"] == total
    assert stats_concurrent["txn.conflicts"] == 0
    assert stats_serial["lsn"] == stats_concurrent["lsn"] == total
    # Group commit actually batched (not just won by accident).
    assert stats_concurrent["txn.merged_gate_checks"] >= 1
    speedup = t_serial / t_concurrent
    report(
        f"E12: {N_WORKERS} writers x {TXNS_PER_WORKER} txns, "
        f"{N_EMPLOYEES}-employee db",
        [
            (
                "serialized",
                f"{t_serial:.3f}",
                f"{total / t_serial:.1f}",
                stats_serial["txn.batches"],
            ),
            (
                "group commit",
                f"{t_concurrent:.3f}",
                f"{total / t_concurrent:.1f}",
                stats_concurrent["txn.batches"],
            ),
            ("speedup", f"{speedup:.2f}x", "", ""),
        ],
        ("mode", "seconds", "txn/s", "gate batches"),
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"group commit gave only {speedup:.2f}x over serialized commits "
        f"(required {REQUIRED_SPEEDUP}x)"
    )

    def quick_burst():
        scratch = tempfile.mkdtemp(dir=tmp_path)
        try:
            db = ManagedDatabase(scratch, source, sync=False)
            sessions = []
            for step in range(4):
                session = db.begin()
                session.stage(transaction(99, step))
                sessions.append(session)
            with ThreadPoolExecutor(4) as pool:
                list(pool.map(lambda s: s.commit(), sessions))
            db.close()
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    benchmark(quick_burst)


def test_e12_identical_state_both_modes(tmp_path):
    """Group commit is an optimization, not a semantics change: both
    modes end in the same canonical model."""
    source = service_source()
    run_serialized(tmp_path / "serial", source)
    run_concurrent(tmp_path / "concurrent", source)
    serial = ManagedDatabase(tmp_path / "serial", sync=False)
    concurrent = ManagedDatabase(tmp_path / "concurrent", sync=False)
    assert sorted(map(str, serial.database.facts)) == sorted(
        map(str, concurrent.database.facts)
    )
    assert sorted(map(str, serial.model.model)) == sorted(
        map(str, concurrent.model.model)
    )
    serial.close()
    concurrent.close()


def test_e12_recovery_time(benchmark, tmp_path):
    """Recovery = snapshot load + WAL replay; a checkpoint bounds it.
    Reports wall times and pins correctness of the recovered model."""
    source = service_source()
    directory = tmp_path / "db"
    db = ManagedDatabase(directory, source, sync=False)
    for step in range(N_WORKERS * TXNS_PER_WORKER):
        result = db.submit(transaction(step % N_WORKERS, 100 + step))
        assert result.ok
    final_lsn = db.lsn
    db.close()

    start = time.perf_counter()
    replayed = ManagedDatabase(directory, sync=False)
    t_replay = time.perf_counter() - start
    assert replayed.lsn == final_lsn
    assert replayed.recovered.replayed_transactions == final_lsn
    fresh = compute_model(replayed.database.facts, replayed.database.program)
    assert sorted(map(str, fresh)) == sorted(map(str, replayed.model.model))
    replayed.checkpoint()
    replayed.close()

    start = time.perf_counter()
    snapshotted = ManagedDatabase(directory, sync=False)
    t_snapshot = time.perf_counter() - start
    assert snapshotted.lsn == final_lsn
    assert snapshotted.recovered.replayed_transactions == 0
    snapshotted.close()

    report(
        f"E12: recovery of {final_lsn} committed txns",
        [
            ("full WAL replay", f"{t_replay * 1e3:.1f}"),
            ("after checkpoint", f"{t_snapshot * 1e3:.1f}"),
        ],
        ("path", "ms"),
    )

    benchmark(lambda: ManagedDatabase(directory, sync=False).close())

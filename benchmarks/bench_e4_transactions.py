"""E4 — Shared vs. per-instance evaluation of update constraints
(Section 3.2, drawback 2: redundant subqueries).

The student/enrolled/attends scenario: each inserted student triggers
two simplified instances (S1 from the explicit update, S2 from the
induced ``enrolled`` update) sharing the subquery ``attends(s, ddb)``.
Global (shared-engine, deduplicated) evaluation evaluates each residual
check once; per-instance evaluation re-creates the evaluation context
for every instance — "redundancies … appear rather frequently in case
of transactions consisting of more than one single-fact update".

Series: per transaction size t, time and lookups for shared vs.
per-instance evaluation.
"""

import pytest

from repro.integrity.checker import IntegrityChecker
from repro.workloads.deductive import university_database, university_transaction

from conftest import report

SIZES = [1, 2, 4, 8, 16]
STUDENTS = 200

_cache = {}


def workload(size):
    if size not in _cache:
        db = university_database(STUDENTS)
        checker = IntegrityChecker(db)
        transaction = university_transaction(size, attend=True)
        _cache[size] = (db, checker, transaction)
    return _cache[size]


@pytest.mark.parametrize("t", SIZES)
def test_e4_shared_evaluation(benchmark, t):
    _, checker, transaction = workload(t)
    result = benchmark(lambda: checker.check_bdm(transaction))
    assert result.ok


@pytest.mark.parametrize("t", SIZES)
def test_e4_per_instance_evaluation(benchmark, t):
    _, checker, transaction = workload(t)
    result = benchmark(
        lambda: checker.check_bdm(transaction, share_evaluation=False)
    )
    assert result.ok


def test_e4_report(benchmark):
    rows = []
    for t in SIZES:
        _, checker, transaction = workload(t)
        shared = checker.check_bdm(transaction)
        separate = checker.check_bdm(transaction, share_evaluation=False)
        rows.append(
            (
                t,
                shared.stats["instances_evaluated"],
                shared.stats["lookups"],
                separate.stats["lookups"],
            )
        )
    report(
        "E4: evaluation cost per transaction size",
        rows,
        ("t", "instances", "shared lookups", "per-instance lookups"),
    )
    for t, instances, shared_lookups, separate_lookups in rows:
        assert separate_lookups >= shared_lookups
    # The per-instance penalty grows with the transaction size.
    assert rows[-1][3] - rows[-1][2] >= rows[0][3] - rows[0][2]
    benchmark(lambda: None)

"""E17 (extension, not from the paper) — worst-case-optimal triangle
joins.

The batch pipeline joins a body pairwise, so on cyclic bodies it pays
for the largest pairwise intermediate no matter which order the
planner picks. ``join_algo="wcoj"`` routes eligible bodies through the
leapfrog triejoin (:mod:`repro.datalog.wcoj`) instead, whose running
time is bounded by the AGM fractional-edge-cover bound of the body.

The workload is the classic pairwise-adversarial triangle instance
(the Loomis–Whitney-style family from the worst-case-optimal join
literature): for a density parameter k, each of ``r``, ``s``, ``t``
holds ``2k + 1`` tuples arranged so that *every* pairwise join —
whatever the order, so the greedy planner cannot save the hash
pipeline — materializes a Θ(k²) intermediate, while the triangle
output is only Θ(k). The leapfrog runs it in Õ(k), so the speedup
itself must grow with k: the headline assertion is super-constant
separation (the margin at each density beats the previous density's
by a real factor), not one fixed ratio. Both kernels must produce
identical models; the run must never count a wcoj fallback.
"""

import os
import time

import pytest

from repro.datalog.bottomup import compute_model
from repro.datalog.facts import FactStore
from repro.datalog.program import Program, Rule
from repro.logic.formulas import Atom
from repro.logic.parser import parse_rule
from repro.logic.terms import Constant
from repro.obs.metrics import default_registry

from conftest import report

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
# Densities must span a real growth range: the acceptance is that the
# speedup *increases* across them, not just clears a floor.
DENSITIES = [100, 300] if QUICK else [200, 400, 800]
MIN_SPEEDUP = 2.0 if QUICK else 3.0
MIN_GROWTH = 1.3


def loomis_whitney(k):
    """r/s/t of 2k+1 tuples each whose every pairwise join is Θ(k²).

    One hub value per column (``a0``/``b0``/``c0``): each relation
    pairs the hub of one column with all spokes of the other, in both
    orientations, plus the all-hub tuple. Any two relations then share
    a hub that fans k ways on each side — a k² intermediate — while
    only ~3k assignments close the triangle.
    """
    facts = FactStore()
    a0, b0, c0 = Constant("a0"), Constant("b0"), Constant("c0")
    for i in range(1, k + 1):
        ai, bi, ci = Constant(f"a{i}"), Constant(f"b{i}"), Constant(f"c{i}")
        facts.add(Atom("r", (a0, bi)))
        facts.add(Atom("r", (ai, b0)))
        facts.add(Atom("s", (b0, ci)))
        facts.add(Atom("s", (bi, c0)))
        facts.add(Atom("t", (a0, ci)))
        facts.add(Atom("t", (ai, c0)))
    facts.add(Atom("r", (a0, b0)))
    facts.add(Atom("s", (b0, c0)))
    facts.add(Atom("t", (a0, c0)))
    return facts


TRIANGLE = Program([Rule.from_parsed(parse_rule(
    "tri(X, Y, Z) :- r(X, Y), s(Y, Z), t(X, Z)"
))])


def timed(fn, repeats=3):
    """Best-of-*repeats* wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def measure(k):
    facts = loomis_whitney(k)
    fallbacks = default_registry().counter("join.wcoj_fallbacks")
    before = fallbacks.value
    t_hash, m_hash = timed(
        lambda: compute_model(facts, TRIANGLE, "greedy", join_algo="hash")
    )
    t_wcoj, m_wcoj = timed(
        lambda: compute_model(facts, TRIANGLE, "greedy", join_algo="wcoj")
    )
    assert set(m_hash) == set(m_wcoj)
    assert m_wcoj.count("tri") == 3 * k + 1
    assert fallbacks.value == before, (
        "the triangle body must never fall back to the hash pipeline"
    )
    return t_hash, t_wcoj


def test_e17_wcoj_speedup_grows_with_density(benchmark):
    """The headline acceptance: the leapfrog's margin over pairwise
    hash joins grows super-constantly across the density sweep."""
    speedups = []
    rows = []
    for k in DENSITIES:
        t_hash, t_wcoj = measure(k)
        speedups.append(t_hash / t_wcoj)
        rows.append((
            k,
            f"{t_hash * 1e3:.2f}",
            f"{t_wcoj * 1e3:.2f}",
            f"{speedups[-1]:.1f}x",
        ))
    report(
        "E17: worst-case-optimal triangle join (Loomis–Whitney family)",
        rows,
        ("k", "hash ms", "wcoj ms", "speedup"),
    )
    assert all(s >= MIN_SPEEDUP for s in speedups), speedups
    for slower, faster in zip(speedups, speedups[1:]):
        # Super-constant: the margin itself must widen with density,
        # by a real factor (measured ~2x per doubling; asserted well
        # below that to stay robust on noisy CI runners).
        assert faster >= slower * MIN_GROWTH, speedups
    facts = loomis_whitney(DENSITIES[0])
    benchmark(
        lambda: compute_model(facts, TRIANGLE, "greedy", join_algo="wcoj")
    )


def test_e17_auto_routes_the_cyclic_body_to_wcoj():
    """The default ``auto`` mode must match explicit ``wcoj`` here:
    the triangle body is cyclic, so the planner routes it to the
    leapfrog without being asked."""
    k = DENSITIES[0]
    facts = loomis_whitney(k)
    joins = default_registry().counter("join.wcoj_joins")
    before = joins.value
    model = compute_model(facts, TRIANGLE, "greedy", join_algo="auto")
    assert model.count("tri") == 3 * k + 1
    assert joins.value > before


@pytest.mark.parametrize("k", DENSITIES[:1])
def test_e17_wcoj_overhead_on_acyclic_star_is_nil(k):
    """``auto`` must not tax the workloads the hash pipeline already
    wins: an acyclic star body stays on hash (no wcoj counters move)
    and costs within noise of an explicit hash run."""
    facts = FactStore()
    for i in range(k * 4):
        x = Constant(f"x{i}")
        facts.add(Atom("src", (x,)))
        facts.add(Atom("a", (x, Constant(f"a{i % 17}"))))
        facts.add(Atom("b", (x, Constant(f"b{i % 13}"))))
    star = Program([Rule.from_parsed(parse_rule(
        "wide(X, A, B) :- src(X), a(X, A), b(X, B)"
    ))])
    registry = default_registry()
    joins_before = registry.counter("join.wcoj_joins").value
    falls_before = registry.counter("join.wcoj_fallbacks").value
    t_hash, m_hash = timed(
        lambda: compute_model(facts, star, "greedy", join_algo="hash")
    )
    t_auto, m_auto = timed(
        lambda: compute_model(facts, star, "greedy", join_algo="auto")
    )
    assert set(m_hash) == set(m_auto)
    assert registry.counter("join.wcoj_joins").value == joins_before
    assert registry.counter("join.wcoj_fallbacks").value == falls_before
    report(
        f"E17: acyclic star under auto, n={k * 4}",
        [("hash", f"{t_hash * 1e3:.2f}"), ("auto", f"{t_auto * 1e3:.2f}")],
        ("join algo", "ms (best of 3)"),
    )
    # Same kernel either way — only eligibility detection separates
    # them, and that is per-join, not per-tuple.
    assert t_auto <= t_hash * 1.5 + 0.01

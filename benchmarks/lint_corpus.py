"""Materialize the CI lint corpus: every workload generator's program
rendered to surface syntax, one ``.dl`` file each, ready for
``repro lint --fail-on error``.

The point is a regression tripwire in both directions: a workload
generator that starts emitting an unsafe or unstratifiable program
fails CI, and an analyzer check that starts flagging known-good
programs as errors fails CI too.

Usage::

    python benchmarks/lint_corpus.py --out lint-corpus
    python -m repro lint --fail-on error lint-corpus/*.dl
"""

from __future__ import annotations

import argparse
import os
import sys


def corpus() -> dict:
    """name -> program source, spanning every workload family."""
    from repro.workloads.deductive import (
        ancestor_database,
        fanout_database,
        rule_chain_database,
        university_database,
    )
    from repro.workloads.orders import make_orders_database
    from repro.workloads.relational import make_relational_database
    from repro.workloads.theorem_proving import (
        cycle_coloring,
        pigeonhole,
        serial_order,
        steamroller,
    )

    return {
        "deductive_fanout": fanout_database(8)[0].to_source(),
        "deductive_rule_chain": rule_chain_database(6, 4)[0].to_source(),
        "deductive_ancestor": ancestor_database(12)[0].to_source(),
        "deductive_university": university_database(10).to_source(),
        "orders": make_orders_database(10).to_source(),
        "relational": make_relational_database(10).to_source(),
        "tp_steamroller": steamroller(),
        "tp_pigeonhole": pigeonhole(3),
        "tp_cycle_coloring": cycle_coloring(5),
        "tp_serial_order": serial_order(
            irreflexive=True, antisymmetric=True
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="lint-corpus",
        help="directory to write the .dl files into",
    )
    args = parser.parse_args(argv)
    os.makedirs(args.out, exist_ok=True)
    programs = corpus()
    for name, source in sorted(programs.items()):
        path = os.path.join(args.out, f"{name}.dl")
        with open(path, "w") as handle:
            handle.write(source if source.endswith("\n") else source + "\n")
        print(f"wrote {path}")
    print(f"{len(programs)} programs")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E1 — Relational integrity: simplified instances vs. full re-check.

Paper claim (§6): "the time saved by the reduction techniques of the
integrity maintenance method is significant as soon as base relations
contain a few dozen of tuples."

Series: per base-relation size n, the time to check one harmless insert
with the full constraint sweep vs. [NICO 79] simplified instances
(Proposition 1). The gap must open by n ≈ a few dozen and widen with n.
"""

import pytest

from repro.integrity.checker import IntegrityChecker
from repro.logic.parser import parse_literal
from repro.workloads.relational import RelationalWorkload

from conftest import report

SIZES = [10, 30, 100, 300, 1000]

_cache = {}


def workload(n):
    if n not in _cache:
        db = RelationalWorkload(n, seed=0).build()
        checker = IntegrityChecker(db)
        update = parse_literal("works_in(e1, d0)")
        # Warm the old-state engine once; both methods then measure the
        # incremental work of one update against a warm database.
        checker.check_bdm(update)
        _cache[n] = (db, checker, update)
    return _cache[n]


@pytest.mark.parametrize("n", SIZES)
def test_e1_full_check(benchmark, n):
    _, checker, update = workload(n)
    result = benchmark(lambda: checker.check_full(update))
    assert result.ok


@pytest.mark.parametrize("n", SIZES)
def test_e1_simplified_instances(benchmark, n):
    _, checker, update = workload(n)
    result = benchmark(lambda: checker.check_nicolas(update))
    assert result.ok


@pytest.mark.parametrize("n", SIZES)
def test_e1_bdm(benchmark, n):
    """The deductive-ready method on the rule-free database — must track
    the relational method, not the full check."""
    _, checker, update = workload(n)
    result = benchmark(lambda: checker.check_bdm(update))
    assert result.ok


def test_e1_report(benchmark):
    """The lookup-count series behind the wall-time claim: the full
    check scales with n, the simplified check stays flat."""
    rows = []
    for n in SIZES:
        _, checker, update = workload(n)
        full = checker.check_full(update)
        nicolas = checker.check_nicolas(update)
        rows.append(
            (n, full.stats["lookups"], nicolas.stats["lookups"])
        )
    report(
        "E1: atom lookups per update check",
        rows,
        ("n", "full", "simplified"),
    )
    smallest, largest = rows[0], rows[-1]
    # Shape: the full check's cost grows with n …
    assert largest[1] > smallest[1] * 10
    # … the simplified check's does not grow with n at all.
    assert largest[2] <= smallest[2] + 5
    # Crossover well before "a few dozen" tuples.
    assert rows[1][2] < rows[1][1]
    benchmark(lambda: None)  # keep --benchmark-only from skipping this

"""E15 (extension, not from the paper) — storage backends and the
precisely-invalidated derived-result cache.

Two claims from PR 6's API redesign, pinned on counters first and wall
clock second:

1. **Warm cache.** Repeating a recursive query against an unchanged
   committed state is a cache probe, not a re-evaluation: the manager's
   :class:`ResultCache` serves it ≥5× faster than the uncached
   configuration re-deriving the closure each time (measured margin is
   orders of magnitude; 5× keeps the assertion robust on slow CI).
   Commits touching an *unrelated* predicate leave the entries warm —
   DRed's exact change sets drive per-predicate-key eviction, so the
   hit counters keep climbing across such commits (asserted, not
   timed).

2. **Out of core.** The same transitive-closure materialization that
   blows a capped in-memory dict store (``StoreCapacityError``) runs to
   completion on the sqlite backend, whose relations live outside the
   interpreter heap.
"""

import os
import time

import pytest

import repro
from repro.datalog.bottomup import compute_model
from repro.datalog.facts import FactStore
from repro.datalog.program import Program, Rule
from repro.logic.parser import parse_atom, parse_rule
from repro.storage.backends import StoreCapacityError, make_store

from conftest import report

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
CHAIN = 60 if QUICK else 120
REPEATS = 15 if QUICK else 40

REACH_RULES = [
    "reach(X, Y) :- link(X, Y)",
    "reach(X, Y) :- link(X, Z), reach(Z, Y)",
]


def chain_source(n):
    lines = [f"link(c{i}, c{i + 1})." for i in range(n)]
    lines += [f"{rule}." for rule in REACH_RULES]
    lines += [f"other(o{i})." for i in range(5)]
    return "\n".join(lines)


def open_db(cache):
    return repro.open(
        source=chain_source(CHAIN),
        config=repro.EngineConfig(cache=cache),
    )


# Expensive per evaluation even against a materialized model: the
# universal ranges over the O(n^2) closure, so an uncached engine pays
# the sweep on every repeat while the cache answers from one entry.
QUERY = "forall X, Y: reach(X, Y) -> reach(c0, Y)"


def timed_queries(db):
    start = time.perf_counter()
    for _ in range(REPEATS):
        assert db.query(QUERY) is True
    return time.perf_counter() - start


class TestWarmCacheSpeedup:
    def test_warm_repeat_is_5x_faster_than_uncached(self):
        cached = open_db(cache=True)
        uncached = open_db(cache=False)
        # Warm-up: first evaluation pays the derivation in both
        # configurations (and populates the cache in one).
        cached.query(QUERY)
        uncached.query(QUERY)

        cold = timed_queries(uncached)
        warm = timed_queries(cached)

        stats = cached.manager.result_cache.stats()
        report(
            "E15a: warm result cache vs re-evaluation "
            f"({REPEATS} repeats, chain={CHAIN})",
            [
                ("uncached", f"{cold * 1000:.1f}", "-", "-"),
                ("cached", f"{warm * 1000:.1f}", stats["cache.hits"],
                 stats["cache.misses"]),
            ],
            header=("config", "ms total", "hits", "misses"),
        )
        # Every repeat after the warm-up was served from the cache.
        assert stats["cache.hits"] >= REPEATS
        assert cold / max(warm, 1e-9) >= 5.0, (
            f"warm cache only {cold / warm:.1f}x faster"
        )

    def test_unrelated_commit_leaves_cache_warm(self):
        db = open_db(cache=True)
        db.query(QUERY)  # populate
        hits_before = db.manager.result_cache.stats()["cache.hits"]
        for i in range(3):
            # 'other' shares no lineage with link/reach: DRed's change
            # set never names a cached dependency.
            assert db.submit(f"other(fresh{i})").status == "committed"
            assert db.query(QUERY) is True
        stats = db.manager.result_cache.stats()
        report(
            "E15b: cache across unrelated commits",
            [(stats["cache.hits"], stats["cache.misses"], stats["cache.invalidations"])],
            header=("hits", "misses", "invalidations"),
        )
        assert stats["cache.hits"] == hits_before + 3
        assert stats["cache.invalidations"] == 0
        # A commit on the query's own lineage does evict.
        assert db.submit(f"link(c{CHAIN}, cX)").status == "committed"
        misses_before = db.manager.result_cache.stats()["cache.misses"]
        assert db.query(QUERY) is True
        assert db.manager.result_cache.stats()["cache.misses"] > misses_before


class TestOutOfCore:
    def test_sqlite_completes_a_model_past_the_dict_cap(self):
        n = 50 if QUICK else 80
        cap = n * 2  # far below the O(n^2) reach closure
        facts = [parse_atom(f"link(c{i}, c{i + 1})") for i in range(n)]
        program = Program(
            [Rule.from_parsed(parse_rule(r)) for r in REACH_RULES]
        )

        capped = FactStore(facts, max_facts=cap)
        with pytest.raises(StoreCapacityError):
            compute_model(capped, program)

        big = make_store("sqlite", facts)
        model = compute_model(big, program)
        closure = n * (n + 1) // 2
        report(
            "E15c: out-of-core materialization",
            [
                ("dict capped", cap, "StoreCapacityError"),
                ("sqlite", len(model), f"{closure} reach facts"),
            ],
            header=("backend", "model size/cap", "outcome"),
        )
        assert type(model).__name__ == "SqliteFactStore"
        assert model.count("reach") == closure
        assert len(model) == closure + n
